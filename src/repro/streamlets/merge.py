"""The merge: "integrating different types of information into a whole body".

Stateful counterpart of the switch: it collects parts tagged with the same
group id (on any input port) and emits one ``multipart/mixed`` message when
the whole group — whose size travels in the count header — has arrived.
Untagged messages pass through unchanged.

Parts are re-assembled in arrival order, which together with FIFO channels
preserves the original part order for linear topologies; a group spread
over parallel branches may interleave, but group *membership* is exact.
"""

from __future__ import annotations

from repro.errors import RuntimeFault
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY, MULTIPART_MIXED
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext
from repro.streamlets.switch import COUNT_HEADER, GROUP_HEADER

MERGE_DEF = ast.StreamletDef(
    name="merge",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi1", ANY),
        ast.PortDecl(ast.PortDirection.IN, "pi2", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", MULTIPART_MIXED),
    ),
    kind=ast.StreamletKind.STATEFUL,
    library="general/merge",
    description="integrate different types of information into a whole body",
)


class Merge(Streamlet):
    """Collect switch-tagged parts back into multipart messages."""

    def __init__(self, instance_id: str, definition: ast.StreamletDef):
        super().__init__(instance_id, definition)
        self._pending: dict[str, tuple[int, list[MimeMessage]]] = {}

    def reset(self) -> None:
        self._pending.clear()

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        group = message.headers.get(GROUP_HEADER)
        if group is None:
            return [("po", message)]
        count_raw = message.headers.get(COUNT_HEADER)
        if count_raw is None:
            raise RuntimeFault(
                f"merge {self.instance_id}: part in group {group} lacks {COUNT_HEADER}"
            )
        count = int(count_raw)
        expected, parts = self._pending.get(group, (count, []))
        if expected != count:
            raise RuntimeFault(
                f"merge {self.instance_id}: group {group} count disagreement "
                f"({expected} vs {count})"
            )
        message.headers.remove(GROUP_HEADER)
        message.headers.remove(COUNT_HEADER)
        parts.append(message)
        if len(parts) < count:
            self._pending[group] = (expected, parts)
            return []
        del self._pending[group]
        merged = MimeMessage.multipart(parts, session=message.session)
        return [("po", merged)]

    @property
    def pending_groups(self) -> int:
        return len(self._pending)
