"""The power-saving streamlet ("a power-saving mechanism as discussed in
[Anastasi02]", section 4.3).

Radio transmission dominates handheld energy budgets, and waking the radio
per message is the worst case.  This streamlet *bundles* consecutive
messages into one multipart burst (``bundle`` size from ``ctx.params``,
default 4) so the client radio can sleep between bursts.  The client peer
(``unbundler``) splits bursts back into individual messages in order.

A bundle is also flushed early when ``flush()`` is called (the stream's
END handling) so no message is stranded — the section 6.6 loss-avoidance
rule applied to stateful streamlets.
"""

from __future__ import annotations

from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext

BUNDLE_HEADER = "X-MobiGATE-Bundle"
PEER_UNBUNDLER = "unbundler"

POWER_SAVING_DEF = ast.StreamletDef(
    name="powerSaving",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", ANY),
    ),
    kind=ast.StreamletKind.STATEFUL,
    library="general/power_saving",
    description="bundle messages into bursts so the client radio can sleep",
)


class PowerSaving(Streamlet):
    """Bundle messages into bursts so the client radio can sleep."""
    peer_id = PEER_UNBUNDLER

    def __init__(self, instance_id: str, definition: ast.StreamletDef):
        super().__init__(instance_id, definition)
        self._buffer: list[MimeMessage] = []

    def reset(self) -> None:
        self._buffer.clear()

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        bundle_size = int(ctx.params.get("bundle", 4))
        if bundle_size <= 1:
            return [("po", message)]
        self._buffer.append(message)
        if len(self._buffer) < bundle_size:
            return []
        return self._flush_emission()

    def _flush_emission(self) -> Emission:
        if not self._buffer:
            return []
        parts = list(self._buffer)
        self._buffer.clear()
        bundle = MimeMessage.multipart(parts, session=parts[0].session)
        bundle.headers.set(BUNDLE_HEADER, str(len(parts)))
        return [("po", bundle)]

    def flush(self) -> Emission:
        """Emit a partial bundle (called on stream end / drain)."""
        return self._flush_emission()

    def on_end(self, ctx: StreamletContext) -> None:
        # anything left unbundled at teardown is surfaced via flush();
        # schedulers that tear down politely call flush() first
        self._buffer.clear()

    @property
    def buffered(self) -> int:
        return len(self._buffer)


def unbundle_message(message: MimeMessage) -> list[MimeMessage]:
    """The peer transformation: split a burst back into messages."""
    if message.headers.get(BUNDLE_HEADER) is None:
        return [message]
    return list(message.parts)
