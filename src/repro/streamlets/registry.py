"""Advertise the built-in streamlet library into a directory."""

from __future__ import annotations

from repro.mcl import astnodes as ast
from repro.runtime.directory import StreamletDirectory
from repro.streamlets.aggregate import AGGREGATOR_DEF, Aggregator
from repro.streamlets.basic import REDIRECTOR_DEF, Redirector
from repro.streamlets.customize import CUSTOMIZER_DEF, Customizer
from repro.streamlets.cache import CACHE_DEF, CacheStreamlet
from repro.streamlets.communicator import COMMUNICATOR_DEF, Communicator
from repro.streamlets.compress import TEXT_COMPRESS_DEF, TextCompress
from repro.streamlets.crypto import ENCRYPTOR_DEF, Encryptor
from repro.streamlets.image_ops import (
    GIF2JPEG_DEF,
    IMG_DOWN_SAMPLE_DEF,
    MAP_TO_16_GRAYS_DEF,
    Gif2Jpeg,
    ImageDownSample,
    MapTo16Grays,
)
from repro.streamlets.merge import MERGE_DEF, Merge
from repro.streamlets.power import POWER_SAVING_DEF, PowerSaving
from repro.streamlets.switch import SWITCH_DEF, ContentSwitch
from repro.streamlets.text_ops import POSTSCRIPT2TEXT_DEF, Postscript2Text
from repro.streamlets.xmlstream import XML_STREAMER_DEF, XmlStreamer

_BUILTINS = [
    (REDIRECTOR_DEF, Redirector),
    (SWITCH_DEF, ContentSwitch),
    (MERGE_DEF, Merge),
    (IMG_DOWN_SAMPLE_DEF, ImageDownSample),
    (MAP_TO_16_GRAYS_DEF, MapTo16Grays),
    (GIF2JPEG_DEF, Gif2Jpeg),
    (POSTSCRIPT2TEXT_DEF, Postscript2Text),
    (TEXT_COMPRESS_DEF, TextCompress),
    (ENCRYPTOR_DEF, Encryptor),
    (CACHE_DEF, CacheStreamlet),
    (POWER_SAVING_DEF, PowerSaving),
    (COMMUNICATOR_DEF, Communicator),
    (AGGREGATOR_DEF, Aggregator),
    (CUSTOMIZER_DEF, Customizer),
    (XML_STREAMER_DEF, XmlStreamer),
]


def builtin_definitions() -> dict[str, ast.StreamletDef]:
    """Definition objects for every built-in service."""
    return {definition.name: definition for definition, _factory in _BUILTINS}


def register_builtin_streamlets(directory: StreamletDirectory) -> None:
    """Advertise every built-in service into ``directory`` (idempotent)."""
    for definition, factory in _BUILTINS:
        if definition.name not in directory:
            directory.advertise(definition, factory)
