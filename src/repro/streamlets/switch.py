"""The switch: "dividing incoming messages based on the semantic type".

A multipart message is split into its parts; each part is routed to the
output port whose declared media type accepts it.  Parts are tagged with a
group id and the group size so the downstream :mod:`merge` streamlet can
re-assemble exactly the original grouping.  Non-multipart messages are
routed whole.

Parts no output port accepts go to the wildcard port if one exists;
otherwise they are dropped by the runtime's open-circuit accounting (the
chapter-5 analysis exists to catch that misconfiguration statically).
"""

from __future__ import annotations

from repro.mcl import astnodes as ast
from repro.mime.mediatype import (
    ANY,
    APPLICATION_POSTSCRIPT,
    IMAGE,
    MULTIPART_MIXED,
    TEXT,
)
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext
from repro.util.ids import IdGenerator

GROUP_HEADER = "X-MobiGATE-Part-Group"
COUNT_HEADER = "X-MobiGATE-Part-Count"

SWITCH_DEF = ast.StreamletDef(
    name="switch",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", MULTIPART_MIXED),
        ast.PortDecl(ast.PortDirection.OUT, "po_img", IMAGE),
        ast.PortDecl(ast.PortDirection.OUT, "po_ps", APPLICATION_POSTSCRIPT),
        ast.PortDecl(ast.PortDirection.OUT, "po_txt", TEXT),
    ),
    kind=ast.StreamletKind.STATELESS,
    library="general/switch",
    description="divide incoming messages based on the semantic type of the data",
)

_groups = IdGenerator("grp")


class ContentSwitch(Streamlet):
    """Route (parts of) messages by media type to typed output ports."""

    def _route(self, message: MimeMessage) -> str | None:
        """Best-matching output port for a message, most specific first."""
        best: tuple[int, str] | None = None
        for port in self.definition.outputs():
            pattern = port.mediatype
            if message.content_type.matches(pattern):
                # specificity: concrete subtype (2) > type wildcard (1) > */* (0)
                score = (pattern.maintype != "*") + (pattern.subtype != "*")
                if best is None or score > best[0]:
                    best = (score, port.name)
        return best[1] if best else None

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        if not message.is_multipart:
            out = self._route(message)
            return [(out, message)] if out else []
        parts = message.parts
        group = _groups.next()
        emissions: Emission = []
        for part in parts:
            out = self._route(part)
            if out is None:
                continue  # dropped; analysis should have routed everything
            part.headers.set(GROUP_HEADER, group)
            part.headers.set(COUNT_HEADER, str(len(parts)))
            if message.session is not None:
                part.headers.session = message.session
            emissions.append((out, part))
        return emissions
