"""PostScript-to-Text: "discarding some information on format and
converting documents to rich-text supported by most devices" (section 4.3).

The payload is a :class:`~repro.codecs.psdoc.PsDocument` (or its textual
wire form); the streamlet keeps the ``show`` text runs and drops the
formatting/graphics operators, retyping to ``text/richtext`` — which the
compatibility example of section 4.4.1 then feeds into the Text Compressor
(``text/richtext`` ≤ ``text``).
"""

from __future__ import annotations

from repro.codecs.psdoc import PsDocument
from repro.errors import CodecError
from repro.mcl import astnodes as ast
from repro.mime.mediatype import APPLICATION_POSTSCRIPT, TEXT_RICHTEXT
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext

POSTSCRIPT2TEXT_DEF = ast.StreamletDef(
    name="postscript2text",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", APPLICATION_POSTSCRIPT),
        ast.PortDecl(ast.PortDirection.OUT, "po", TEXT_RICHTEXT),
    ),
    kind=ast.StreamletKind.STATELESS,
    library="text/postscript2text",
    description="discard formatting and convert documents to rich text",
)


class Postscript2Text(Streamlet):
    """Strip formatting operators; keep the text runs as text/richtext."""
    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        body = message.body
        if isinstance(body, PsDocument):
            document = body
        elif isinstance(body, bytes | bytearray):
            document = PsDocument.parse(bytes(body).decode("utf-8"))
        elif isinstance(body, str):
            document = PsDocument.parse(body)
        else:
            raise CodecError(
                f"postscript2text received undecodable {message.content_type} payload"
            )
        message.set_body(document.to_text().encode("utf-8"), TEXT_RICHTEXT)
        return [("po", message)]
