"""XML streaming: deliver a large document progressively (§1.2.1).

A big structured document stalls a slow link until the last byte arrives;
the streaming service entity splits it at top-level element boundaries so
the client can render children as they land:

* **XmlStreamer** (server): parses the ``application/xml`` payload and
  emits one message per top-level child, each wrapped in an envelope
  element carrying the root's name/attributes plus sequence headers
  (``X-MobiGATE-XStream`` id, ``X-MobiGATE-XSeq`` i/n).  Documents whose
  root has at most one child pass through whole.
* **XmlReassembler** (client peer ``xml_reassemble``): holds fragments by
  stream id and reconstitutes the original document when the set
  completes.

The transformation is exactly invertible for parsed documents — text
directly under the root travels in the fragment that follows it, so
child order and content survive.
"""

from __future__ import annotations

from repro.codecs.sgml import Element, parse
from repro.errors import CodecError
from repro.mcl import astnodes as ast
from repro.mime.mediatype import MediaType
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import Emission, Streamlet, StreamletContext
from repro.util.ids import IdGenerator

APPLICATION_XML = MediaType("application", "xml")
STREAM_HEADER = "X-MobiGATE-XStream"
SEQ_HEADER = "X-MobiGATE-XSeq"
PEER_XML_REASSEMBLE = "xml_reassemble"
_ENVELOPE = "mobigate.fragment"
_stream_ids = IdGenerator("xstr")

XML_STREAMER_DEF = ast.StreamletDef(
    name="xml_streamer",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", APPLICATION_XML),
        ast.PortDecl(ast.PortDirection.OUT, "po", APPLICATION_XML),
    ),
    kind=ast.StreamletKind.STATELESS,
    library="xml/streamer",
    description="split XML documents at element boundaries for progressive delivery",
)


def _document_of(message: MimeMessage) -> Element:
    body = message.body
    if isinstance(body, Element):
        return body
    if isinstance(body, bytes | bytearray):
        return parse(bytes(body).decode("utf-8"))
    if isinstance(body, str):
        return parse(body)
    raise CodecError(
        f"xml_streamer received undecodable {message.content_type} payload"
    )


class XmlStreamer(Streamlet):
    """Split XML documents into per-element fragments for progressive delivery."""
    peer_id = PEER_XML_REASSEMBLE

    def process(self, port: str, message: MimeMessage, ctx: StreamletContext) -> Emission:
        document = _document_of(message)
        children = document.children
        if len(children) <= 1:
            # nothing to stream; forward whole (no peer work either, but a
            # 1-fragment stream keeps the client path uniform)
            children = list(children)
        stream_id = _stream_ids.next()
        total = max(1, len(children))
        emissions: Emission = []
        for index in range(total):
            envelope = Element(
                _ENVELOPE,
                {"root": document.name, "id": stream_id,
                 "seq": str(index), "total": str(total)},
            )
            for key, value in document.attrs.items():
                envelope.attrs[f"r.{key}"] = value
            if children:
                envelope.add(children[index])
            fragment = MimeMessage(
                APPLICATION_XML,
                envelope.serialize().encode("utf-8"),
                headers=message.headers,
            )
            fragment.headers.set(STREAM_HEADER, stream_id)
            fragment.headers.set(SEQ_HEADER, f"{index}/{total}")
            emissions.append(("po", fragment))
        return emissions


class XmlReassembly:
    """Client-side state: collect fragments, rebuild documents."""

    def __init__(self):
        self._partial: dict[str, dict[int, Element]] = {}

    def add(self, message: MimeMessage) -> MimeMessage | None:
        """Feed one fragment; returns the whole document when complete."""
        stream_id = message.headers.get(STREAM_HEADER)
        if stream_id is None:
            raise CodecError("fragment lacks the XStream header")
        envelope = _document_of(message)
        if envelope.name != _ENVELOPE:
            raise CodecError(f"not a fragment envelope: <{envelope.name}>")
        seq = int(envelope.attrs["seq"])
        total = int(envelope.attrs["total"])
        fragments = self._partial.setdefault(stream_id, {})
        fragments[seq] = envelope
        if len(fragments) < total:
            return None
        del self._partial[stream_id]
        first = fragments[0]
        root = Element(
            first.attrs["root"],
            {k[2:]: v for k, v in first.attrs.items() if k.startswith("r.")},
        )
        for index in range(total):
            child_envelope = fragments.get(index)
            if child_envelope is None:
                raise CodecError(f"stream {stream_id} missing fragment {index}")
            root.children.extend(child_envelope.children)
        rebuilt = MimeMessage(
            APPLICATION_XML,
            root.serialize().encode("utf-8"),
            headers=message.headers,
        )
        rebuilt.headers.remove(STREAM_HEADER)
        rebuilt.headers.remove(SEQ_HEADER)
        return rebuilt

    @property
    def pending_streams(self) -> int:
        return len(self._partial)
