"""``repro.telemetry`` — end-to-end observability for the streamlet plane.

The ROADMAP's north star ("heavy traffic ... as fast as the hardware
allows") demands the system *measure before optimising*; the thesis's own
evaluation is entirely about per-streamlet overhead, pass-mode cost, and
reconfiguration latency.  This package makes those quantities first-class
runtime observables instead of outside-the-box bench timings:

* :mod:`repro.telemetry.metrics` — counters, gauges, and log-bucket
  histograms behind a :class:`MetricsRegistry` (lock-free reads, one lock
  per metric family);
* :mod:`repro.telemetry.trace` — per-message spans that follow a message
  through every streamlet hop, across the wireless link (via the
  ``Content-Trace`` MIME extension header), and through the client's peer
  chain;
* :mod:`repro.telemetry.export` — JSON snapshots and Prometheus text
  format, plus the ``python -m repro.telemetry`` CLI.

The runtime talks to all of it through the :class:`Telemetry` facade,
injected into :class:`~repro.runtime.server.MobiGateServer` (default-on).
:class:`NullTelemetry` is the selectable no-op twin: every hook short-
circuits on a single ``enabled`` attribute test and allocates nothing, so
benchmarks can quantify the observer overhead (see
``repro.bench.telemetry_overhead``).

Hot-path discipline (a streamlet hop costs ~14 µs, so the observer budget
is ~1 µs): stream counters are *not* incremented per message — the plain
``StreamStats`` integers the runtime already keeps are mirrored into
registry counters at export time (:meth:`Telemetry.flush`); per-hop
latency histograms are pre-bound per instance and always on; spans are
taken every ``trace_sample_interval``-th message (the first is always
taken, so every run yields one complete trace); channel-wait samples
follow the *traced* messages — channels check the traced-id set inline,
so an untraced enqueue costs one set lookup and nothing else.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING

from repro.mime.headers import CONTENT_TRACE
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    exponential_buckets,
    global_registry,
)
from repro.telemetry.recorder import NULL_RECORDER, FlightRecorder, NullFlightRecorder
from repro.telemetry.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.mime.message import MimeMessage
    from repro.runtime.stream import ReconfigTiming, StreamStats

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_TELEMETRY",
    "NullFlightRecorder",
    "NullStreamTelemetry",
    "NullTelemetry",
    "Span",
    "StreamTelemetry",
    "Telemetry",
    "Tracer",
    "exponential_buckets",
    "global_registry",
]

_TRACE_SEPARATOR = ";"

#: StreamStats field -> (metric leaf, help text); the export-time mirror
_STAT_COUNTERS = (
    ("messages_in", "Messages admitted by post()"),
    ("messages_out", "Messages drained at egress"),
    ("processed", "Streamlet process() completions"),
    ("queue_drops", "Messages dropped on a full queue"),
    ("open_circuit_drops", "Emissions aimed at an unconnected port"),
    ("processing_failures", "Messages whose process() raised"),
    ("events_handled", "Context events that ran a when-handler"),
    ("absorbed", "Messages consumed by a streamlet without emission"),
    ("failure_drops", "Failed messages released with no recovery handler"),
    ("end_drops", "Pool entries drained from channels at stream end"),
    ("retries", "Failed messages re-posted by a recovery supervisor"),
    ("dead_letters", "Messages dead-lettered after exhausting recovery"),
)


class StreamTelemetry:
    """Per-stream hot-path hooks, with metric children pre-bound.

    Built by :meth:`Telemetry.bind_stream`; the runtime keeps one per
    :class:`~repro.runtime.stream.RuntimeStream` and the schedulers guard
    every call site with a single ``if tm.enabled`` test, so the no-op
    twin costs one attribute read per message.
    """

    __slots__ = (
        "stream",
        "_tracer",
        "_interval",
        "_trace_ticker",
        "traced_ids",
        "enqueued",
        "_stats",
        "_counters",
        "_hop_family",
        "_wait_family",
        "_queue_wait_family",
        "_egress_wait_hist",
        "_queue_depth_family",
        "_queue_watermark_family",
        "_shard_ring_family",
        "_shard_util_family",
        "recorder",
        "_reconfig_family",
        "_epoch_gauge",
        "_txn_family",
        "_txn_latency",
    )

    enabled = True

    def __init__(self, telemetry: "Telemetry", stream: str):
        registry = telemetry.registry
        self.stream = stream
        self._tracer = telemetry.tracer
        self._interval = telemetry.trace_sample_interval
        self._trace_ticker = itertools.count()
        #: ids of in-flight messages picked for tracing; channels probe this
        #: inline on post so untraced traffic pays one set lookup
        self.traced_ids: set[str] = set()
        #: msg id -> enqueue perf_counter() for traced ids awaiting a fetch
        self.enqueued: dict[str, float] = {}
        self._stats: "StreamStats | None" = None
        self._counters: list[tuple[str, Counter]] = [
            (
                field,
                registry.counter(
                    f"mobigate_stream_{field}_total", help, labels=("stream",)
                ).labels(stream),  # type: ignore[misc]
            )
            for field, help in _STAT_COUNTERS
        ]
        self._hop_family = registry.histogram(
            "mobigate_hop_seconds",
            "Per-streamlet processing latency (checkout + process + trace)",
            labels=("stream", "instance"),
        )
        self._wait_family = registry.histogram(
            "mobigate_channel_wait_seconds",
            "Time a message id waited in a channel queue (sampled)",
            labels=("stream", "channel"),
        )
        self._queue_wait_family = registry.histogram(
            "mobigate_hop_queue_wait_seconds",
            "Queue-post to claim delay per instance (every message)",
            labels=("stream", "instance"),
        )
        self._egress_wait_hist = registry.histogram(
            "mobigate_hop_egress_seconds",
            "Egress-channel post to collect() drain delay (every message)",
            labels=("stream",),
        ).labels(stream)
        self._queue_depth_family = registry.gauge(
            "mobigate_queue_depth",
            "Messages currently resident in a channel queue",
            labels=("stream", "channel"),
        )
        self._queue_watermark_family = registry.gauge(
            "mobigate_queue_watermark",
            "High-watermark of a channel queue's depth since creation",
            labels=("stream", "channel"),
        )
        self._shard_ring_family = registry.gauge(
            "mobigate_shard_ring_depth",
            "Descriptors resident in one shard's shared-memory ring "
            "(direction: tx = parent to worker, rx = worker to parent)",
            labels=("stream", "shard", "direction"),
        )
        self._shard_util_family = registry.gauge(
            "mobigate_shard_utilization",
            "Fraction of a shard worker process's uptime spent processing",
            labels=("stream", "shard"),
        )
        self.recorder = telemetry.recorder
        self._reconfig_family = registry.histogram(
            "mobigate_reconfig_seconds",
            "End-to-end duration of one reconfiguration epoch (Eq 7-1)",
            labels=("stream", "event"),
        )
        self._epoch_gauge = registry.gauge(
            "mobigate_stream_epoch",
            "Current composition epoch (bumped by commits and rollbacks)",
            labels=("stream",),
        ).labels(stream)
        self._txn_family = registry.counter(
            "mobigate_reconfig_transactions_total",
            "Reconfiguration transactions by outcome "
            "(committed / rolled_back / validation_failed)",
            labels=("stream", "outcome"),
        )
        self._txn_latency = registry.histogram(
            "mobigate_reconfig_latency_seconds",
            "Wall-clock latency of transaction phases (commit / rollback)",
            labels=("stream", "phase"),
        )

    # -- export-time counter mirror ---------------------------------------------

    def attach_stats(self, stats: "StreamStats") -> None:
        """Adopt the stream's plain-integer stats as the counter source."""
        self._stats = stats

    def flush(self) -> None:
        """Mirror the attached ``StreamStats`` into the registry counters.

        Counters are owned by this mirror, so a plain store is safe; the
        hot path never touches them (the runtime increments bare ints).
        """
        stats = self._stats
        if stats is None:
            return
        for field, counter in self._counters:
            counter.value = getattr(stats, field)

    # -- ingress --------------------------------------------------------------

    def admit(self, message: "MimeMessage") -> bool:
        """Sample the message into a trace: set its ``Content-Trace`` header.

        Returns True when the message was picked, so the stream can mark
        its pool id as traced (:meth:`mark_traced`) once the id exists.
        """
        if next(self._trace_ticker) % self._interval:
            return False
        trace_id = self._tracer.new_trace_id()
        span = self._tracer.start_span(
            "ingress", trace_id=trace_id, attrs={"stream": self.stream}
        )
        self._tracer.end_span(span)
        message.headers.set_trace(trace_id, span.span_id)
        return True

    def mark_traced(self, msg_id: str) -> None:
        """Flag a pool id as traced so channels record its queue waits."""
        if len(self.traced_ids) > 512:  # leak guard: ids missed by forget()
            self.traced_ids.clear()
        self.traced_ids.add(msg_id)

    def forget(self, msg_id: str) -> None:
        """Drop the traced flag and any pending enqueue timestamp for an id."""
        self.traced_ids.discard(msg_id)
        if self.enqueued:
            self.enqueued.pop(msg_id, None)

    # -- streamlet hops ----------------------------------------------------------

    def hop_histogram(self, instance: str) -> Histogram:
        """The hop-latency histogram for one instance (bind once per node)."""
        return self._hop_family.labels(self.stream, instance)  # type: ignore[return-value]

    def hop_span(
        self,
        instance: str,
        raw: str,
        message: "MimeMessage",
        emissions: list | None,
        duration: float,
        failed: bool = False,
    ) -> None:
        """Record the span of one traced hop and advance the trace context.

        ``raw`` is the message's ``Content-Trace`` value the scheduler
        already read; the header's parent span is advanced to this hop on
        the processed message and on any emission that kept the same
        headers, so the next hop parents correctly — including hops on the
        far side of the wire.
        """
        trace_id, _, parent = raw.partition(_TRACE_SEPARATOR)
        span = self._tracer.start_span(
            f"hop:{instance}",
            trace_id=trace_id,
            parent_id=parent or None,
            start=time.perf_counter() - duration,
            attrs={"instance": instance},
        )
        if failed:
            span.attrs["failed"] = True
        self._tracer.end_span(span)
        updated = f"{trace_id}{_TRACE_SEPARATOR}{span.span_id}"
        message.headers.set(CONTENT_TRACE, updated)
        if emissions:
            for _port, out in emissions:
                if out is not message and out.headers.get(CONTENT_TRACE) == raw:
                    out.headers.set(CONTENT_TRACE, updated)

    def queue_wait_histogram(self, instance: str) -> Histogram:
        """The queue-wait histogram for one instance (bind once per node).

        Unlike :meth:`channel_wait_histogram` (sampled, follows traced
        ids), this family is fed for *every* claimed message from the
        queue's own post-time deque — see
        :attr:`~repro.runtime.message_queue.MessageQueue.last_post_at`.
        """
        return self._queue_wait_family.labels(self.stream, instance)  # type: ignore[return-value]

    def egress_wait_histogram(self) -> Histogram:
        """The egress pickup-delay histogram (one per stream)."""
        return self._egress_wait_hist  # type: ignore[return-value]

    def queue_depth_gauge(self, channel_name: str) -> Gauge:
        """The live-depth gauge bound to one channel queue."""
        return self._queue_depth_family.labels(self.stream, channel_name)  # type: ignore[return-value]

    def queue_watermark_gauge(self, channel_name: str) -> Gauge:
        """The high-watermark gauge bound to one channel queue."""
        return self._queue_watermark_family.labels(self.stream, channel_name)  # type: ignore[return-value]

    # -- process execution plane ------------------------------------------------

    def shard_ring_gauge(self, shard: str, direction: str) -> Gauge:
        """Ring-depth gauge for one direction of a shard's segment pair."""
        return self._shard_ring_family.labels(self.stream, shard, direction)  # type: ignore[return-value]

    def shard_utilization_gauge(self, shard: str) -> Gauge:
        """Busy-fraction gauge for one shard worker process."""
        return self._shard_util_family.labels(self.stream, shard)  # type: ignore[return-value]

    # -- channel waits -----------------------------------------------------------

    def channel_wait_histogram(self, channel_name: str) -> Histogram:
        """The wait histogram bound to one channel of this stream.

        Channels record waits *inline* (probing :attr:`traced_ids` on post
        and :attr:`enqueued` on fetch) rather than through method calls —
        see :meth:`~repro.runtime.channel.Channel.post`.
        """
        return self._wait_family.labels(self.stream, channel_name)  # type: ignore[return-value]

    # -- reconfiguration epochs ------------------------------------------------------

    def reconfig_begin(self, event_id: str) -> Span:
        """Open the span bracketing one event-handler epoch."""
        return self._tracer.start_span(
            "reconfig",
            trace_id=self._tracer.new_trace_id(),
            attrs={"stream": self.stream, "event": event_id},
        )

    def reconfig_end(self, span: Span, event_id: str, timing: "ReconfigTiming") -> None:
        """Close a reconfiguration span and feed the epoch histogram."""
        self._tracer.end_span(
            span,
            suspend=timing.suspend,
            channel_ops=timing.channel_ops,
            activate=timing.activate,
            actions=timing.actions,
        )
        self._reconfig_family.labels(self.stream, event_id).observe(timing.total)

    # -- transactional reconfiguration (repro.runtime.reconfig) ------------------------

    def epoch(self, value: int) -> None:
        """Record the stream's current composition epoch."""
        self._epoch_gauge.set(float(value))

    def reconfig_outcome(self, outcome: str) -> None:
        """Count one transaction outcome (committed/rolled_back/validation_failed)."""
        self._txn_family.labels(self.stream, outcome).inc()

    def reconfig_latency(self, phase: str, seconds: float) -> None:
        """Observe the wall-clock latency of one transaction phase."""
        self._txn_latency.labels(self.stream, phase).observe(seconds)


class NullStreamTelemetry:
    """The do-nothing twin of :class:`StreamTelemetry` (zero allocations)."""

    __slots__ = ()

    enabled = False
    #: shared no-op recorder; call sites read ``tm.recorder`` uniformly
    recorder = NULL_RECORDER

    def attach_stats(self, stats) -> None:
        """No-op."""

    def flush(self) -> None:
        """No-op."""

    def admit(self, message) -> bool:
        """No-op; nothing is ever sampled."""
        return False

    def mark_traced(self, msg_id: str) -> None:
        """No-op."""

    def forget(self, msg_id: str) -> None:
        """No-op."""

    def hop_histogram(self, instance: str) -> None:
        """No-op: nodes bound to this twin keep no histogram."""
        return None

    def hop_span(self, instance, raw, message, emissions, duration, failed=False) -> None:
        """No-op."""

    def queue_wait_histogram(self, instance: str) -> None:
        """No-op: nodes bound to this twin record no queue waits."""
        return None

    def egress_wait_histogram(self) -> None:
        """No-op."""
        return None

    def queue_depth_gauge(self, channel_name: str) -> None:
        """No-op."""
        return None

    def queue_watermark_gauge(self, channel_name: str) -> None:
        """No-op."""
        return None

    def shard_ring_gauge(self, shard: str, direction: str) -> None:
        """No-op."""
        return None

    def shard_utilization_gauge(self, shard: str) -> None:
        """No-op."""
        return None

    def channel_wait_histogram(self, channel_name: str) -> None:
        """No-op: channels bound to this twin record no waits."""
        return None

    def reconfig_begin(self, event_id: str) -> None:
        """No-op."""
        return None

    def reconfig_end(self, span, event_id, timing) -> None:
        """No-op."""

    def epoch(self, value: int) -> None:
        """No-op."""

    def reconfig_outcome(self, outcome: str) -> None:
        """No-op."""

    def reconfig_latency(self, phase: str, seconds: float) -> None:
        """No-op."""


_NULL_STREAM_TELEMETRY = NullStreamTelemetry()


class Telemetry:
    """The facade the server injects into every component (default-on).

    By default metrics land in the process-wide
    :func:`~repro.telemetry.metrics.global_registry` (so one export covers
    every server in the process) while spans go to a private
    :class:`Tracer`.  Tests that need isolation pass a fresh
    :class:`MetricsRegistry`.

    ``trace_sample_interval`` traces every Nth admitted message per
    stream (channel waits are sampled for exactly those messages).  The
    first
    message of a stream is always traced, so even a sampled run yields at
    least one complete trace.  The default of 64 keeps the enabled-mode
    hop overhead under the 10%% budget; pass 1 to trace everything.
    """

    enabled = True

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        trace_sample_interval: int = 64,
        max_spans: int = 4096,
    ):
        if trace_sample_interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {trace_sample_interval}")
        self.registry = registry if registry is not None else global_registry()
        self.tracer = tracer if tracer is not None else Tracer(max_spans=max_spans)
        self.trace_sample_interval = trace_sample_interval
        self._streams: list[StreamTelemetry] = []
        #: the flight recorder every bound component shares (NullTelemetry
        #: instances see ``enabled = False`` here and get the no-op twin)
        self.recorder: "FlightRecorder | NullFlightRecorder" = (
            FlightRecorder() if self.enabled else NULL_RECORDER
        )
        if self.enabled:
            # the observer's own loss, mirrored at flush() time
            self._span_counter = self.registry.counter(
                "mobigate_trace_spans_total", "Spans recorded by the tracer"
            ).unlabelled()
            self._span_drop_counter = self.registry.counter(
                "mobigate_trace_spans_dropped_total",
                "Spans evicted from the tracer ring before export",
            ).unlabelled()
        else:
            self._span_counter = None
            self._span_drop_counter = None

    # -- component bindings ------------------------------------------------------

    def bind_stream(self, stream: str) -> StreamTelemetry:
        """The per-stream hot-path hook bundle for ``stream``."""
        bound = StreamTelemetry(self, stream)
        self._streams.append(bound)
        return bound

    def pool_gauge(self, stream: str) -> Gauge:
        """The live-message gauge for one stream's message pool."""
        family = self.registry.gauge(
            "mobigate_pool_messages", "Messages resident in the pool", labels=("stream",)
        )
        return family.labels(stream)  # type: ignore[return-value]

    def event_counter(self, stream: str) -> Counter:
        """Counter of context events dispatched to one stream."""
        family = self.registry.counter(
            "mobigate_events_dispatched_total",
            "Context events routed to a stream by the Coordination Manager",
            labels=("stream",),
        )
        return family.labels(stream)  # type: ignore[return-value]

    def dead_letter_gauge(self, stream: str) -> Gauge:
        """Messages currently parked in one stream's dead-letter pool."""
        family = self.registry.gauge(
            "mobigate_dead_letters",
            "Messages parked in the dead-letter pool",
            labels=("stream",),
        )
        return family.labels(stream)  # type: ignore[return-value]

    def fault_counter(self, stream: str, outcome: str) -> Counter:
        """Supervisor disposition counter (retried / recovered / exhausted / bypassed)."""
        family = self.registry.counter(
            "mobigate_fault_recoveries_total",
            "Streamlet failures by recovery disposition",
            labels=("stream", "outcome"),
        )
        return family.labels(stream, outcome)  # type: ignore[return-value]

    def streamlet_acquired(self, definition: str, pooled: bool) -> None:
        """Count one Streamlet Manager acquire (fresh build vs pool reuse)."""
        family = self.registry.counter(
            "mobigate_streamlets_acquired_total",
            "Streamlet instances handed out by the Streamlet Manager",
            labels=("definition", "source"),
        )
        family.labels(definition, "pooled" if pooled else "new").inc()

    def link_bandwidth_gauge(self, link: str) -> Gauge:
        """The bandwidth gauge for one monitored wireless link."""
        family = self.registry.gauge(
            "mobigate_link_bandwidth_bps", "Last observed link bandwidth", labels=("link",)
        )
        return family.labels(link)  # type: ignore[return-value]

    def link_event_counter(self, link: str, event: str) -> Counter:
        """The edge-event counter for one monitored link and event kind."""
        family = self.registry.counter(
            "mobigate_link_events_total",
            "Context events raised by link monitors",
            labels=("link", "event"),
        )
        return family.labels(link, event)  # type: ignore[return-value]

    # -- gateway (repro.gateway) ------------------------------------------------------

    def gateway_connections_gauge(self) -> Gauge:
        """Live data-plane socket connections."""
        return self.registry.gauge(
            "mobigate_gateway_connections", "Open data-plane client connections"
        ).unlabelled()  # type: ignore[return-value]

    def gateway_sessions_gauge(self) -> Gauge:
        """Sessions (deployed per-session streams) the gateway hosts."""
        return self.registry.gauge(
            "mobigate_gateway_sessions", "Deployed gateway sessions"
        ).unlabelled()  # type: ignore[return-value]

    def gateway_frames_counter(self, direction: str) -> Counter:
        """Frames crossing the data plane, by direction (``in`` / ``out``)."""
        family = self.registry.counter(
            "mobigate_gateway_frames_total",
            "Wire frames parsed off (in) or written to (out) data sockets",
            labels=("direction",),
        )
        return family.labels(direction)  # type: ignore[return-value]

    def gateway_bytes_counter(self, direction: str) -> Counter:
        """Bytes crossing the data plane, by direction (``in`` / ``out``)."""
        family = self.registry.counter(
            "mobigate_gateway_bytes_total",
            "Bytes read from (in) or written to (out) data sockets",
            labels=("direction",),
        )
        return family.labels(direction)  # type: ignore[return-value]

    def gateway_backpressure_counter(self, outcome: str) -> Counter:
        """Backpressure dispositions (``parked`` / ``resumed`` / ``shed``)."""
        family = self.registry.counter(
            "mobigate_gateway_backpressure_total",
            "Ingress frames that hit a full session "
            "(parked: read paused; resumed: room freed; shed: park budget spent)",
            labels=("outcome",),
        )
        return family.labels(outcome)  # type: ignore[return-value]

    def gateway_frame_errors_counter(self) -> Counter:
        """Connections dropped over malformed/unroutable frames."""
        return self.registry.counter(
            "mobigate_gateway_frame_errors_total",
            "Malformed or unroutable frames received on the data plane",
        ).unlabelled()  # type: ignore[return-value]

    def gateway_outage_counter(self) -> Counter:
        """Socket-boundary stalls injected by a link-outage fault."""
        return self.registry.counter(
            "mobigate_gateway_outage_stalls_total",
            "Reads stalled at the socket boundary by an injected link outage",
        ).unlabelled()  # type: ignore[return-value]

    def gateway_e2e_histogram(self) -> Histogram:
        """Gateway-internal end-to-end latency (admission -> egress delivery).

        The ground truth the attribution components are checked against —
        see :func:`repro.telemetry.attribution.decompose`.
        """
        return self.registry.histogram(
            "mobigate_gateway_e2e_seconds",
            "Gateway-internal latency from session admission to egress delivery",
        ).unlabelled()  # type: ignore[return-value]

    def gateway_delivery_histogram(self) -> Histogram:
        """Egress ``collect()`` pickup to delivery-callback latency.

        The last attribution component: serialization plus the pump's
        per-batch handoff, closing the gap between the hop egress family
        (which ends at ``collect()``) and the end-to-end observation.
        """
        return self.registry.histogram(
            "mobigate_hop_delivery_seconds",
            "Latency from egress collect() pickup to the delivery callback",
        ).unlabelled()  # type: ignore[return-value]

    def gateway_admission_histogram(self) -> Histogram:
        """Socket-read to session-admission latency (park loop included)."""
        return self.registry.histogram(
            "mobigate_gateway_admission_seconds",
            "Data-plane latency from frame decode to session admission",
        ).unlabelled()  # type: ignore[return-value]

    def gateway_egress_write_histogram(self) -> Histogram:
        """Egress pump handoff to socket-write latency (loop hop included)."""
        return self.registry.histogram(
            "mobigate_gateway_egress_write_seconds",
            "Latency from egress pump handoff to the data-plane socket write",
        ).unlabelled()  # type: ignore[return-value]

    # -- durable state plane (repro.store) ------------------------------------------

    def store_append_counter(self, backend: str) -> Counter:
        """Ledger records appended to a state store, by backend."""
        family = self.registry.counter(
            "mobigate_store_appends_total",
            "Ledger records appended to the durable state store",
            labels=("backend",),
        )
        return family.labels(backend)  # type: ignore[return-value]

    def store_fsync_counter(self, backend: str) -> Counter:
        """Durability syncs (fsync / commit) a state store performed."""
        family = self.registry.counter(
            "mobigate_store_fsyncs_total",
            "fsync/commit barriers performed by the durable state store",
            labels=("backend",),
        )
        return family.labels(backend)  # type: ignore[return-value]

    def store_replay_counter(self, backend: str) -> Counter:
        """Ledger records replayed out of a state store during recovery."""
        family = self.registry.counter(
            "mobigate_store_replays_total",
            "Ledger records replayed from the durable state store",
            labels=("backend",),
        )
        return family.labels(backend)  # type: ignore[return-value]

    def recovery_counter(self, outcome: str) -> Counter:
        """Crash-recovery session outcomes (``restored`` / ``skipped``)."""
        family = self.registry.counter(
            "mobigate_store_recoveries_total",
            "Sessions processed by crash recovery, by outcome",
            labels=("outcome",),
        )
        return family.labels(outcome)  # type: ignore[return-value]

    def dead_letters_evicted_counter(self, stream: str) -> Counter:
        """Dead letters evicted oldest-first by the pool's capacity bound."""
        family = self.registry.counter(
            "mobigate_dead_letters_evicted_total",
            "Dead letters evicted by the pool capacity bound",
            labels=("stream",),
        )
        return family.labels(stream)  # type: ignore[return-value]

    # -- client side ---------------------------------------------------------------

    def client_counters(self) -> tuple[Counter, Counter]:
        """``(messages, bytes)`` counters for a MobiGATE client."""
        messages = self.registry.counter(
            "mobigate_client_messages_total", "Messages received off the link"
        ).unlabelled()
        received = self.registry.counter(
            "mobigate_client_bytes_total", "Wire bytes received off the link"
        ).unlabelled()
        return messages, received  # type: ignore[return-value]

    def client_dead_letter_counter(self, reason: str) -> Counter:
        """Counter of client-side dead-letters, by structured reason."""
        family = self.registry.counter(
            "mobigate_client_dead_letters_total",
            "Messages the client parked instead of raising "
            "(unknown-peer / stale-peer / reverse-failed / malformed-epoch)",
            labels=("reason",),
        )
        return family.labels(reason)  # type: ignore[return-value]

    def peer_hop(
        self,
        peer_id: str,
        message: "MimeMessage",
        results: list["MimeMessage"],
        duration: float,
    ) -> None:
        """Record one client-side reverse-processing step.

        Mirrors :meth:`StreamTelemetry.hop_span`: histogram always, a span
        when the message carries a ``Content-Trace`` context — which it
        does whenever the server traced it, because the header survives
        the wire.
        """
        family = self.registry.histogram(
            "mobigate_client_peer_seconds",
            "Per-peer reverse-processing latency",
            labels=("peer",),
        )
        family.labels(peer_id).observe(duration)
        raw = message.headers.get(CONTENT_TRACE)
        if raw is None:
            return
        trace_id, _, parent = raw.partition(_TRACE_SEPARATOR)
        span = self.tracer.start_span(
            f"peer:{peer_id}",
            trace_id=trace_id,
            parent_id=parent or None,
            start=time.perf_counter() - duration,
            attrs={"peer": peer_id},
        )
        self.tracer.end_span(span)
        updated = f"{trace_id}{_TRACE_SEPARATOR}{span.span_id}"
        for out in results:
            if out.headers.get(CONTENT_TRACE) == raw:
                out.headers.set(CONTENT_TRACE, updated)

    # -- export convenience ------------------------------------------------------------

    def flush(self) -> None:
        """Mirror every bound stream's plain stats into registry counters."""
        for bound in self._streams:
            bound.flush()
        if self._span_counter is not None:
            self._span_counter.value = self.tracer.recorded
            self._span_drop_counter.value = self.tracer.dropped

    def snapshot(self) -> dict:
        """JSON-ready snapshot of the registry (see ``telemetry.export``)."""
        from repro.telemetry.export import snapshot

        self.flush()
        return snapshot(self.registry)

    def prometheus(self) -> str:
        """Prometheus text-format rendering of the registry."""
        from repro.telemetry.export import to_prometheus

        self.flush()
        return to_prometheus(self.registry)


class NullTelemetry(Telemetry):
    """The selectable no-op implementation (observer-overhead baseline).

    Every binding returns an inert singleton or ``None``; the private
    registry and tracer stay empty forever, and nothing is allocated on
    the hot path.
    """

    enabled = False

    def __init__(self):
        super().__init__(registry=MetricsRegistry(), tracer=Tracer(max_spans=1))

    def bind_stream(self, stream: str) -> NullStreamTelemetry:  # type: ignore[override]
        """The shared no-op stream bundle."""
        return _NULL_STREAM_TELEMETRY

    def pool_gauge(self, stream: str) -> None:  # type: ignore[override]
        """No-op: pools bound to this twin keep no gauge."""
        return None

    def event_counter(self, stream: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def dead_letter_gauge(self, stream: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def fault_counter(self, stream: str, outcome: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def streamlet_acquired(self, definition: str, pooled: bool) -> None:
        """No-op."""

    def link_bandwidth_gauge(self, link: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def link_event_counter(self, link: str, event: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_connections_gauge(self) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_sessions_gauge(self) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_frames_counter(self, direction: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_bytes_counter(self, direction: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_backpressure_counter(self, outcome: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_frame_errors_counter(self) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_outage_counter(self) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_e2e_histogram(self) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_delivery_histogram(self) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_admission_histogram(self) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def gateway_egress_write_histogram(self) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def store_append_counter(self, backend: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def store_fsync_counter(self, backend: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def store_replay_counter(self, backend: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def recovery_counter(self, outcome: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def dead_letters_evicted_counter(self, stream: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def client_counters(self) -> tuple[None, None]:  # type: ignore[override]
        """No-op: clients bound to this twin keep no counters."""
        return None, None

    def client_dead_letter_counter(self, reason: str) -> None:  # type: ignore[override]
        """No-op."""
        return None

    def peer_hop(self, peer_id, message, results, duration) -> None:
        """No-op."""


#: shared no-op facade — pass as ``telemetry=`` to disable observation
NULL_TELEMETRY = NullTelemetry()
