"""``python -m repro.telemetry`` — live registry dump from a demo run.

Deploys the section 7.5 web-acceleration stream with an isolated
telemetry facade, pushes a small mixed workload through it (triggering a
LOW_BANDWIDTH reconfiguration half-way), reverses the results through a
MobiGATE client, and prints what the telemetry subsystem saw:

* default — the human-readable registry dump plus one full trace;
* ``--prom`` — the Prometheus text-format export;
* ``--json`` — the JSON snapshot.

This doubles as a smoke test that every layer of the instrumentation is
wired: stream counters, hop histograms, channel waits, the reconfig span,
and client-side peer spans all show up in one run.
"""

from __future__ import annotations

import argparse

from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.export import dump, to_json, to_prometheus


def _demo_run(telemetry: Telemetry, messages: int) -> None:
    """Push a mixed workload through webAccel with a mid-run fade."""
    from repro.apps import WEB_ACCELERATION_MCL, build_server
    from repro.client.client import MobiGateClient
    from repro.runtime.scheduler import InlineScheduler
    from repro.workloads.generators import WebWorkload

    server = build_server(telemetry=telemetry)
    stream = server.deploy_script(WEB_ACCELERATION_MCL)
    scheduler = InlineScheduler(stream)
    client = MobiGateClient(telemetry=telemetry)
    # the communicator is a sink: its transport is "the wireless link",
    # here shorted straight to the client (as the emulator does)
    stream.set_param("comm", "transport", client.receive)

    workload = list(WebWorkload(seed=11, image_fraction=0.35).messages(messages))
    half = max(1, len(workload) // 2)
    for message in workload[:half]:
        stream.post(message)
        scheduler.pump()
    server.events.raise_event("LOW_BANDWIDTH")   # splice in the text compressor
    for message in workload[half:]:
        stream.post(message)
        scheduler.pump()
    stream.end()


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: run the demo and print the selected rendering."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="run a short instrumented demo and dump the registry",
    )
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument("--prom", action="store_true", help="Prometheus text format")
    fmt.add_argument("--json", action="store_true", help="JSON snapshot")
    parser.add_argument(
        "--messages", type=int, default=12, help="workload size (default 12)"
    )
    args = parser.parse_args(argv)

    telemetry = Telemetry(registry=MetricsRegistry())
    _demo_run(telemetry, args.messages)

    telemetry.flush()
    if args.prom:
        print(to_prometheus(telemetry.registry), end="")
    elif args.json:
        print(to_json(telemetry.registry))
    else:
        print(dump(telemetry.registry))
        trace_ids = telemetry.tracer.trace_ids()
        if trace_ids:
            print()
            print(telemetry.tracer.format_trace(trace_ids[0]))


if __name__ == "__main__":
    main()
