"""Per-hop latency attribution: where a message's wall time actually goes.

The thesis evaluation (§7) is entirely about decomposed cost — per-
streamlet overhead, channel cost, reconfiguration latency — and the
ROADMAP's sharding/fusion decisions need the same decomposition live.
This module defines the attribution model and folds the hop-level metric
families into per-(stream, streamlet) summaries:

========================================  =====================================
``mobigate_hop_queue_wait_seconds``       queue-post → claim (fetch) per input
                                          channel of an instance — scheduling
                                          plus backpressure delay
``mobigate_hop_seconds``                  claim → step end: pool checkout +
                                          ``process()`` + trace bookkeeping
                                          (the **service** component)
``mobigate_hop_egress_seconds``           egress-channel post → ``collect()``
                                          drain — the pump pickup delay
``mobigate_hop_delivery_seconds``         ``collect()`` pickup → delivery
                                          callback — serialization and the
                                          pump's per-batch handoff
``mobigate_gateway_e2e_seconds``          gateway admission → egress delivery
                                          (the decomposition's ground truth)
========================================  =====================================

Timestamps come from ``time.perf_counter`` at five points: queue-post,
claim, step-start, step-end, egress-handoff.  Queue wait is measured for
*every* message (a deque of post times rides next to the entries — see
:class:`~repro.runtime.message_queue.MessageQueue`), so the histograms
are complete, not sampled; only spans stay sampled.

:func:`summarize` renders the per-instance table the control plane's
``attribution`` verb serves; :func:`decompose` reduces a stream to its
component sums and checks them against the measured end-to-end
histogram — the bench's acceptance gate (components within 5% of e2e).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.metrics import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    pass

#: the attribution metric families, in pipeline order
HOP_QUEUE_WAIT = "mobigate_hop_queue_wait_seconds"
HOP_SERVICE = "mobigate_hop_seconds"
HOP_EGRESS = "mobigate_hop_egress_seconds"
HOP_DELIVERY = "mobigate_hop_delivery_seconds"
GATEWAY_E2E = "mobigate_gateway_e2e_seconds"

_COMPONENTS = (
    ("queue_wait", HOP_QUEUE_WAIT),
    ("service", HOP_SERVICE),
    ("egress", HOP_EGRESS),
    ("delivery", HOP_DELIVERY),
)


def _histogram_rows(registry: MetricsRegistry, family_name: str) -> list[dict]:
    """Per-child summaries (labels + count/sum/mean/max) of one family."""
    family = registry.get(family_name)
    if family is None:
        return []
    rows: list[dict] = []
    for values, child in family.children():
        if not isinstance(child, Histogram) or not child.count:
            continue
        rows.append({
            **dict(zip(family.label_names, values)),
            "count": child.count,
            "sum_seconds": child.sum,
            "mean_seconds": child.stats.mean,
            "max_seconds": child.stats.maximum,
        })
    return rows


def summarize(registry: MetricsRegistry, *, stream: str | None = None) -> dict:
    """The hop-attribution table: one entry per component family.

    Filters to one stream when given.  This is what the gateway control
    plane's ``attribution`` verb returns — per-(stream, instance) queue
    wait and service rows, per-stream egress rows, plus the gateway
    end-to-end histogram when the data plane recorded one.
    """
    out: dict = {}
    for component, family_name in _COMPONENTS + (("e2e", GATEWAY_E2E),):
        rows = _histogram_rows(registry, family_name)
        if stream is not None:
            rows = [r for r in rows if r.get("stream", stream) == stream]
        out[component] = {"family": family_name, "rows": rows}
    return out


def decompose(registry: MetricsRegistry, *, stream: str | None = None) -> dict:
    """Reduce the attribution families to per-message component means.

    Normalises each component's *sum* by the number of end-to-end
    round-trips (so a chain's N service hops per message add up instead
    of averaging away), and reports ``coverage`` — the component sum as a
    fraction of the measured end-to-end mean.  Coverage near 1.0 means
    the components explain the pipeline; a big residual means time is
    going somewhere unattributed.
    """
    sums = {}
    counts = {}
    for component, family_name in _COMPONENTS:
        rows = _histogram_rows(registry, family_name)
        if stream is not None:
            rows = [r for r in rows if r.get("stream", stream) == stream]
        sums[component] = sum(r["sum_seconds"] for r in rows)
        counts[component] = sum(r["count"] for r in rows)
    e2e_rows = _histogram_rows(registry, GATEWAY_E2E)
    e2e_count = sum(r["count"] for r in e2e_rows)
    e2e_sum = sum(r["sum_seconds"] for r in e2e_rows)
    # per-message means: divide every component's total by round-trips
    denominator = e2e_count if e2e_count else max(counts.values(), default=0)
    result: dict = {
        "stream": stream,
        "messages": denominator,
        "components_seconds": {
            component: (sums[component] / denominator if denominator else 0.0)
            for component, _name in _COMPONENTS
        },
        "samples": counts,
    }
    component_total = sum(result["components_seconds"].values())
    result["component_sum_seconds"] = component_total
    if e2e_count:
        e2e_mean = e2e_sum / e2e_count
        result["e2e_mean_seconds"] = e2e_mean
        result["coverage"] = component_total / e2e_mean if e2e_mean > 0 else 0.0
    else:
        result["e2e_mean_seconds"] = None
        result["coverage"] = None
    return result
