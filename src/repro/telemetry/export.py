"""Exporters: registry → JSON snapshot, Prometheus text format, dumps.

Three renderings of one :class:`~repro.telemetry.metrics.MetricsRegistry`:

* :func:`snapshot` — a plain-dict tree (JSON-ready) for machine-readable
  artifacts; ``repro.bench`` writes these next to its timing results so
  the perf trajectory is diffable across PRs;
* :func:`to_prometheus` — the Prometheus exposition text format
  (``# HELP`` / ``# TYPE`` / samples; histograms as cumulative
  ``_bucket{le=...}`` plus ``_sum`` / ``_count``), so a real scrape
  pipeline can ingest a MobiGATE server unchanged;
* :func:`dump` — a fixed-width human rendering for the
  ``python -m repro.telemetry`` CLI and the examples.

Reads are lock-free by the metrics module's design, so exporting never
stalls the streamlet plane.
"""

from __future__ import annotations

import json
import math

from repro.telemetry.metrics import Histogram, MetricFamily, MetricsRegistry


def _finite(value: float) -> float | None:
    """A float safe for strict JSON (non-finite becomes None)."""
    return value if isinstance(value, int | float) and math.isfinite(value) else None


def _label_map(family: MetricFamily, values: tuple[str, ...]) -> dict[str, str]:
    return dict(zip(family.label_names, values))


def snapshot(registry: MetricsRegistry) -> dict:
    """A JSON-ready tree of every family and child in ``registry``."""
    families = []
    for family in registry.families():
        samples = []
        for values, child in family.children():
            sample: dict[str, object] = {"labels": _label_map(family, values)}
            if isinstance(child, Histogram):
                sample.update(
                    count=child.count,
                    sum=_finite(child.sum),
                    min=_finite(child.stats.minimum),
                    max=_finite(child.stats.maximum),
                    mean=_finite(child.stats.mean),
                    stdev=_finite(child.stats.stdev),
                    buckets=[
                        {"le": _finite(bound), "count": cumulative}
                        for bound, cumulative in child.cumulative()
                    ],
                )
            else:
                sample["value"] = _finite(child.value)
            samples.append(sample)
        families.append(
            {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "samples": samples,
            }
        )
    return {"families": families}


def to_json(registry: MetricsRegistry, *, indent: int | None = 2) -> str:
    """The :func:`snapshot` serialised as strict JSON text."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True, allow_nan=False)


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(family: MetricFamily, values: tuple[str, ...], extra: str = "") -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(family.label_names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    text = format(bound, ".12g")
    return text


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".12g")


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus exposition text format."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.children():
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative():
                    le = f'le="{_format_bound(bound)}"'
                    lines.append(
                        f"{family.name}_bucket{_labels_text(family, values, le)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_labels_text(family, values)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_labels_text(family, values)} {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_labels_text(family, values)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# human-readable dump (CLI / examples)
# ---------------------------------------------------------------------------


def dump(registry: MetricsRegistry) -> str:
    """A fixed-width human rendering of every family in ``registry``."""
    lines: list[str] = []
    for family in registry.families():
        children = family.children()
        if not children:
            continue
        lines.append(f"{family.name} ({family.kind})" + (f" — {family.help}" if family.help else ""))
        for values, child in children:
            label = ",".join(
                f"{n}={v}" for n, v in zip(family.label_names, values)
            ) or "-"
            if isinstance(child, Histogram):
                if child.count:
                    body = (
                        f"count={child.count}  mean={child.stats.mean * 1e6:.1f}us  "
                        f"min={child.stats.minimum * 1e6:.1f}us  "
                        f"max={child.stats.maximum * 1e6:.1f}us"
                    )
                else:
                    body = "count=0"
            else:
                body = f"value={_format_value(child.value)}"
            lines.append(f"  {label:<40s} {body}")
    return "\n".join(lines)
