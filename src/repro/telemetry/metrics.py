"""Metric primitives for the streamlet plane: counters, gauges, histograms.

The evaluation chapter of the thesis is entirely about *per-streamlet*
costs (Figures 7-2/7-3/7-6/7-7), so the runtime must be able to measure
itself in-band without distorting what it measures.  The design rules:

* **no locks on read** — every sample is a plain attribute read; exporters
  and dashboards never contend with the hot path;
* **one lock per metric family** — children of one family share their
  family's lock for child creation and counter/gauge writes, so an
  increment costs one uncontended acquire and a couple of arithmetic
  ops (histogram *samples* skip even that — see
  :meth:`Histogram.observe`);
* **labels are positional** — a child is addressed by a tuple of label
  values (``family.labels("webAccel", "tc")``), resolved through a
  lock-free dict read once the child exists.

Histograms keep fixed log-scale buckets (latencies span six orders of
magnitude between an in-process hop and a 20 Kb/s wireless transfer) plus
:class:`~repro.util.stats.RunningStats` for exact moments — the same
Welford accumulator the bench harness already trusts.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections.abc import Iterable, Sequence

from repro.errors import TelemetryError
from repro.util.stats import RunningStats

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-scale bucket upper bounds: start, start·factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise TelemetryError(
            f"bad bucket spec (start={start}, factor={factor}, count={count})"
        )
    return tuple(start * factor**i for i in range(count))


#: 1 µs .. ~4.2 s in ×4 steps — spans an in-process hop and a slow link
DEFAULT_LATENCY_BUCKETS = exponential_buckets(1e-6, 4.0, 12)


class Counter:
    """A monotonically increasing count (reads are lock-free)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise TelemetryError(f"counters only go up (inc by {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (reads and ``set`` are lock-free)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value (single store, no lock)."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self.value -= amount


class Histogram:
    """Log-scale bucket counts plus exact running moments.

    ``bounds[i]`` is the *inclusive* upper bound of bucket ``i`` (the
    Prometheus ``le`` convention); the final slot of ``counts`` is the
    overflow (+Inf) bucket.
    """

    __slots__ = ("_lock", "bounds", "counts", "stats")

    def __init__(self, lock: threading.Lock, bounds: Sequence[float]):
        self._lock = lock
        self.bounds: tuple[float, ...] = tuple(bounds)
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.stats = RunningStats()

    def observe(self, value: float) -> None:
        """Fold one sample into its bucket and the running moments.

        Deliberately lock-free and with the Welford update inlined: this
        runs once per streamlet hop, and the ~1 µs observer budget leaves
        no room for a lock round-trip or an extra call.  Histogram
        children are single-writer by construction — one scheduler worker
        per instance feeds a hop histogram, one channel consumer feeds a
        wait histogram — so under the GIL each sample lands intact; in the
        rare concurrent-writer case (e.g. two distributor workers hitting
        the same peer histogram) a torn update skews the moments by at
        most one sample, which observability data tolerates.
        """
        self.counts[bisect_left(self.bounds, value)] += 1
        stats = self.stats
        stats.count = count = stats.count + 1
        delta = value - stats._mean
        stats._mean = mean = stats._mean + delta / count
        stats._m2 += delta * (value - mean)
        if value < stats.minimum:
            stats.minimum = value
        if value > stats.maximum:
            stats.maximum = value

    @property
    def count(self) -> int:
        """Total samples observed."""
        return self.stats.count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self.stats.mean * self.stats.count if self.stats.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its labelled children.

    One lock per family: child creation and every child write go through
    it; child lookup and all reads do not.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, *values: object) -> Counter | Gauge | Histogram:
        """The child for a tuple of label values (created on first use)."""
        child = self._children.get(values)  # lock-free fast path
        if child is None:
            key = tuple(str(v) for v in values)
            if len(key) != len(self.label_names):
                raise TelemetryError(
                    f"{self.name} expects labels {self.label_names}, got {key!r}"
                )
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = Histogram(self._lock, self.buckets or DEFAULT_LATENCY_BUCKETS)
                    else:
                        child = _KINDS[self.kind](self._lock)
                    self._children[key] = child
        return child

    def unlabelled(self) -> Counter | Gauge | Histogram:
        """The single child of a label-less family."""
        return self.labels()

    def children(self) -> list[tuple[tuple[str, ...], Counter | Gauge | Histogram]]:
        """Snapshot of ``(label_values, child)`` pairs, insertion-ordered."""
        return list(self._children.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricFamily({self.name}, {self.kind}, {len(self._children)} children)"


class MetricsRegistry:
    """Named metric families; registration is idempotent and type-checked."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Iterable[str],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        if not _NAME_RE.match(name):
            raise TelemetryError(f"illegal metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise TelemetryError(f"illegal label name {label!r} on {name}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise TelemetryError(
                        f"metric {name} already registered as {family.kind}"
                        f"{family.label_names}, not {kind}{label_names}"
                    )
                return family
            family = MetricFamily(name, kind, help, label_names, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family with fixed buckets."""
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError(f"histogram buckets must be strictly increasing: {bounds}")
        return self._register(name, "histogram", help, labels, bounds)

    def get(self, name: str) -> MetricFamily | None:
        """The family named ``name``, or None."""
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name for stable export output."""
        return sorted(self._families.values(), key=lambda f: f.name)

    def __len__(self) -> int:
        return len(self._families)


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry every default :class:`Telemetry` shares."""
    return _GLOBAL_REGISTRY
