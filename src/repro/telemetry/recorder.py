"""The flight recorder: a bounded ring of structured runtime events.

Metrics answer "how much"; traces answer "where did one message go"; the
flight recorder answers the postmortem question — *what happened, in what
order* — for the rare, high-signal events a red CI run needs explained:
drops, sheds, retries, dead-letters, fault injections, reconfiguration
validate/commit/rollback, epoch swaps, worker kill/spawn, link outages.

Design rules, matching the rest of :mod:`repro.telemetry`:

* **lock-cheap recording** — one :class:`collections.deque` append plus
  one :class:`itertools.count` tick, both atomic under the GIL, so a
  scheduler worker records an event without taking any lock;
* **bounded** — the deque's ``maxlen`` evicts the oldest events, and the
  eviction itself is observable (:attr:`FlightRecorder.dropped` and the
  cursor gap reported by :meth:`tail`);
* **zero-overhead twin** — :data:`NULL_RECORDER` short-circuits on the
  same ``enabled`` attribute test every other telemetry hook uses, so
  call sites compile down to one attribute read when telemetry is off.

Events carry a process-monotonic sequence number and a
``time.perf_counter`` timestamp, so a dump is totally ordered even when
several threads recorded concurrently.  :meth:`FlightRecorder.dump`
writes the ring as a JSON artifact (into ``$REPRO_FLIGHT_DIR`` or the
working directory) — the conservation checker and the Supervisor call it
automatically when an invariant fails or recovery escalates.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import time
from collections import deque
from pathlib import Path

#: recorder entry: (seq, perf_counter timestamp, category, stream, detail)
_Event = tuple[int, float, str, "str | None", dict]

_LABEL_SANITIZE = re.compile(r"[^A-Za-z0-9_.-]+")


def flight_dump_dir() -> Path:
    """Where dumps land: ``$REPRO_FLIGHT_DIR`` or the working directory."""
    return Path(os.environ.get("REPRO_FLIGHT_DIR") or ".")


class FlightRecorder:
    """Bounded, lock-cheap ring buffer of structured runtime events."""

    enabled = True

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[_Event] = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        #: seq of the most recently recorded event (0 before the first)
        self.last_seq = 0
        #: dumps written so far (label -> path), for introspection
        self.dumps: dict[str, str] = {}

    # -- recording (hot-ish path: drops, retries, reconfig) ---------------------

    def record(self, category: str, *, stream: str | None = None, **detail) -> int:
        """Append one event; returns its sequence number.

        ``category`` names the event kind (``drop``, ``dead_letter``,
        ``reconfig_commit``, ``worker_kill``, ...); ``detail`` is small
        JSON-ready context.  One deque append — no lock.
        """
        seq = next(self._seq)
        self._events.append((seq, time.perf_counter(), category, stream, detail))
        self.last_seq = seq
        return seq

    # -- queries ------------------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Total events ever recorded (evicted ones included)."""
        return self.last_seq

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (recorded - retained)."""
        return self.last_seq - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[dict]:
        """Every retained event as a JSON-ready dict, oldest first."""
        # list(deque) is a single C-level copy: safe against concurrent
        # appends without taking a lock
        return [self._as_dict(e) for e in list(self._events)]

    def tail(self, cursor: int = 0, *, limit: int | None = None) -> dict:
        """Events with seq > ``cursor`` plus the cursor to resume from.

        The returned ``cursor`` is the seq of the last event delivered
        (or the input cursor when nothing new exists), so repeated calls
        see every retained event exactly once.  ``gap`` counts events
        that were evicted before this tail could read them — a non-zero
        gap tells the caller its cursor fell behind the ring.
        """
        retained = list(self._events)
        fresh = [e for e in retained if e[0] > cursor]
        if limit is not None and limit >= 0:
            fresh = fresh[: limit]
        oldest_retained = retained[0][0] if retained else self.last_seq + 1
        gap = max(0, oldest_retained - cursor - 1) if cursor or retained else 0
        next_cursor = fresh[-1][0] if fresh else max(cursor, 0)
        return {
            "events": [self._as_dict(e) for e in fresh],
            "cursor": next_cursor,
            "gap": gap,
            "recorded": self.recorded,
            "dropped": self.dropped,
        }

    @staticmethod
    def _as_dict(event: _Event) -> dict:
        seq, ts, category, stream, detail = event
        out: dict = {"seq": seq, "t": ts, "category": category}
        if stream is not None:
            out["stream"] = stream
        if detail:
            out.update(detail)
        return out

    # -- the artifact --------------------------------------------------------------

    def dump(
        self,
        label: str,
        *,
        reason: str,
        directory: "Path | str | None" = None,
    ) -> str:
        """Write the retained ring as ``FLIGHT_<label>.json``; returns the path.

        Repeated dumps for the same label overwrite the artifact (the
        latest ring supersedes earlier ones), so a retry storm cannot
        litter the filesystem.

        Event ``t`` fields are ``perf_counter`` readings — a different
        clock domain than the wall-clock ``dumped_at``.  The payload
        therefore anchors both: ``dumped_at_monotonic`` is the
        ``perf_counter`` reading taken at the same instant as
        ``dumped_at``, so any event's wall time is
        ``dumped_at - (dumped_at_monotonic - event.t)``.
        """
        safe = _LABEL_SANITIZE.sub("_", label) or "recorder"
        target = Path(directory) if directory is not None else flight_dump_dir()
        try:
            target.mkdir(parents=True, exist_ok=True)
            path = target / f"FLIGHT_{safe}.json"
            # both clocks sampled back-to-back: the pair is the conversion
            # anchor between the events' monotonic domain and wall time
            payload = {
                "label": label,
                "reason": reason,
                "dumped_at": time.time(),
                "dumped_at_monotonic": time.perf_counter(),
                "recorded": self.recorded,
                "dropped": self.dropped,
                "events": self.events(),
            }
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
                encoding="utf-8",
            )
        except OSError:
            # a read-only filesystem must not turn an observability dump
            # into a second failure; the in-memory ring is still there
            return ""
        self.dumps[label] = str(path)
        return str(path)

    def clear(self) -> None:
        """Drop every retained event (seq numbering continues)."""
        self._events.clear()


class NullFlightRecorder:
    """The do-nothing twin (zero allocations, one attribute test to skip)."""

    __slots__ = ()

    enabled = False
    capacity = 0
    last_seq = 0
    recorded = 0
    dropped = 0
    dumps: dict[str, str] = {}

    def record(self, category: str, *, stream: str | None = None, **detail) -> int:
        """No-op."""
        return 0

    def events(self) -> list[dict]:
        """No-op: nothing is ever retained."""
        return []

    def tail(self, cursor: int = 0, *, limit: int | None = None) -> dict:
        """No-op tail: empty and cursor-stable."""
        return {
            "events": [], "cursor": max(cursor, 0), "gap": 0,
            "recorded": 0, "dropped": 0,
        }

    def dump(self, label: str, *, reason: str, directory=None) -> str:
        """No-op: no artifact is written."""
        return ""

    def clear(self) -> None:
        """No-op."""

    def __len__(self) -> int:
        return 0


#: shared no-op recorder — what disabled telemetry hands to every call site
NULL_RECORDER = NullFlightRecorder()
