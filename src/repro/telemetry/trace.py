"""Per-message tracing for the streamlet plane.

A **trace** follows one message from :meth:`RuntimeStream.post` through
every streamlet hop, across the wireless link (the trace context rides in
the ``Content-Trace`` MIME extension header, so it survives
serialisation), and through the client's peer chain.  A **span** is one
timed step of that journey:

========== =====================================================
``ingress``  admission into the stream (the root span)
``hop:<i>``  one streamlet processing step on instance ``<i>``
``reconfig`` one event-handler epoch (Equation 7-1 terms as attrs)
``peer:<p>`` one client-side reverse-processing step
========== =====================================================

Spans parent onto the previous step of the same message, so rendering a
trace (:meth:`Tracer.format_trace`) reads top-to-bottom as the message's
actual path.  Completed spans land in a bounded ring buffer — tracing a
busy stream never grows memory without bound.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass(slots=True)
class Span:
    """One timed step of a trace (times from ``time.perf_counter``)."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float = 0.0
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)


class Tracer:
    """Creates spans and keeps the most recent completed ones.

    Thread-safe by construction: id generation uses atomic counters and
    the ring buffer is a :class:`collections.deque`, so the threaded
    scheduler's workers never contend on a lock to record a span.
    """

    def __init__(self, *, max_spans: int = 4096):
        self._trace_ids = itertools.count()
        self._span_ids = itertools.count()
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self.recorded = 0
        #: spans evicted by the ring bound — the observer's own loss,
        #: mirrored into ``mobigate_trace_spans_dropped_total`` at export
        self.dropped = 0

    # -- ids -----------------------------------------------------------------

    def new_trace_id(self) -> str:
        """A fresh process-unique trace id."""
        return f"trace-{next(self._trace_ids)}"

    # -- span lifecycle --------------------------------------------------------

    def start_span(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        start: float | None = None,
        attrs: dict[str, object] | None = None,
    ) -> Span:
        """Open a span (fresh trace id when none is given)."""
        return Span(
            trace_id=trace_id if trace_id is not None else self.new_trace_id(),
            span_id=f"span-{next(self._span_ids)}",
            parent_id=parent_id,
            name=name,
            start=time.perf_counter() if start is None else start,
            attrs=attrs if attrs is not None else {},
        )

    def end_span(self, span: Span, **attrs: object) -> Span:
        """Close a span, merge ``attrs``, and record it.

        When the ring is full the append silently evicts the oldest
        span; that eviction is counted in :attr:`dropped` so exporters
        can surface the observer's own loss.
        """
        span.end = time.perf_counter()
        if attrs:
            span.attrs.update(attrs)
        spans = self._spans
        if spans.maxlen is not None and len(spans) == spans.maxlen:
            self.dropped += 1
        spans.append(span)
        self.recorded += 1
        return span

    # -- queries ---------------------------------------------------------------

    def spans(self) -> list[Span]:
        """All retained spans in completion order."""
        return list(self._spans)

    def trace(self, trace_id: str) -> list[Span]:
        """The retained spans of one trace, ordered by start time."""
        return sorted(
            (s for s in self._spans if s.trace_id == trace_id),
            key=lambda s: s.start,
        )

    def trace_ids(self) -> list[str]:
        """Distinct trace ids currently retained, oldest first."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        """Drop every retained span (the counters survive)."""
        self._spans.clear()

    # -- rendering --------------------------------------------------------------

    def format_trace(self, trace_id: str) -> str:
        """Render one trace as an indented tree with relative timestamps."""
        spans = self.trace(trace_id)
        if not spans:
            return f"(no spans retained for {trace_id})"
        t0 = spans[0].start
        by_id = {s.span_id: s for s in spans}

        def depth(span: Span) -> int:
            d = 0
            parent = span.parent_id
            while parent is not None and parent in by_id:
                d += 1
                parent = by_id[parent].parent_id
            return d

        lines = [f"trace {trace_id} ({len(spans)} spans)"]
        for span in spans:
            attrs = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
            lines.append(
                f"  {'  ' * depth(span)}{span.name}  "
                f"+{(span.start - t0) * 1e3:.3f}ms  "
                f"{span.duration * 1e6:.1f}us"
                + (f"  [{attrs}]" if attrs else "")
            )
        return "\n".join(lines)
