"""Shared utilities: clocks, identifier generation, and simple statistics."""

from repro.util.clock import Clock, VirtualClock, WallClock
from repro.util.ids import IdGenerator, session_id
from repro.util.stats import RunningStats, Timer

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "IdGenerator",
    "session_id",
    "RunningStats",
    "Timer",
]
