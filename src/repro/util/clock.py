"""Clock abstractions.

The runtime and the network emulator both consume a :class:`Clock`.  The
threaded runtime uses :class:`WallClock` (real ``time.perf_counter`` time);
experiments that must be reproducible use :class:`VirtualClock`, whose time
only advances when the emulator accounts for transmission or processing
time.  Keeping the two behind one interface lets the same stream application
run on a testbed-like wall clock or inside a deterministic simulation, which
is how we replace the paper's three-PC testbed.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic time source measured in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block (or advance virtual time) for ``seconds``."""


class WallClock(Clock):
    """Real time, backed by ``time.perf_counter``."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Deterministic simulated time.

    ``sleep`` advances the clock instantly; ``advance`` is the explicit form
    used by the emulator when it charges transmission time to the link.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (>= 0) and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds!r})")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
