"""Identifier generation.

The paper labels every message with a ``Content-Session`` id (section 4.4.3)
and refers to messages by pool identifiers (section 6.7).  We generate ids
from per-prefix counters so tests and simulations are deterministic, with an
optional process-unique salt for the threaded runtime.
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Thread-safe sequential id generator: ``prefix-0``, ``prefix-1``, ..."""

    def __init__(self, prefix: str):
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self._prefix = prefix
        self._counter = itertools.count()
        self._lock = threading.Lock()

    @property
    def prefix(self) -> str:
        return self._prefix

    def next(self) -> str:
        """The next ``prefix-N`` identifier (thread-safe)."""
        with self._lock:
            return f"{self._prefix}-{next(self._counter)}"

    def __iter__(self):
        while True:
            yield self.next()


_session_counter = IdGenerator("sess")


def session_id() -> str:
    """A fresh ``Content-Session`` value (unique within the process)."""
    return _session_counter.next()
