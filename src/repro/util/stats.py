"""Small statistics helpers used by the runtime and the bench harness.

Following the HPC guidance to *measure before optimising*, the runtime keeps
cheap running statistics (Welford's algorithm — no sample storage) and the
bench harness uses :class:`Timer` around measured regions.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field


class RunningStats:
    """Streaming mean/variance/min/max without storing samples."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the running moments."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values) -> None:
        """Fold an iterable of samples."""
        for v in values:
            self.add(v)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-safe

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two streams (parallel Welford merge)."""
        merged = RunningStats()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.minimum:.6g}, max={self.maximum:.6g})"
        )


@dataclass
class Timer:
    """Context manager measuring elapsed wall time in seconds."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def percentile(sorted_values, q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = (len(sorted_values) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return float(sorted_values[lo]) * (1 - frac) + float(sorted_values[hi]) * frac
