"""Synthetic workloads: the web-content mixes the experiments transmit."""

from repro.workloads.content import (
    synthetic_text,
    synthetic_image_message,
    synthetic_text_message,
    synthetic_ps_document,
    synthetic_ps_message,
    ps_page_message,
    web_page_message,
)
from repro.workloads.generators import WebWorkload

__all__ = [
    "synthetic_text",
    "synthetic_image_message",
    "synthetic_text_message",
    "synthetic_ps_document",
    "synthetic_ps_message",
    "ps_page_message",
    "web_page_message",
    "WebWorkload",
]
