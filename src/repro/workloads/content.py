"""Deterministic synthetic content: text, images, PostScript-like docs.

Everything is seeded, so workloads are byte-identical across runs — the
emulated replacement for the "real image and text messages" of
section 7.5.  Text is word-sampled English-like prose (compressible, like
web text); images come from :meth:`ImageRaster.synthetic` encoded as
MGIF; documents mix text runs with formatting operators.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.imagefmt import ImageRaster, encode_gif
from repro.codecs.psdoc import PsDocument
from repro.errors import WorkloadError
from repro.mime.mediatype import APPLICATION_POSTSCRIPT, IMAGE_GIF, TEXT_PLAIN
from repro.mime.message import MimeMessage

_WORDS = (
    "the of and a to in is was he for it with as his on be at by had not are "
    "but from or have an they which one you were her all she there would their "
    "we him been has when who will more no if out so said what up its about "
    "into than them can only other new some could time these two may then do "
    "first any my now such like our over man me even most made after also did "
    "many before must through back years where much your way well down should "
    "because each just those people mister how too little state good very make "
    "world still own see men work long get here between both life being under "
    "never day same another know while last might us great old year off come "
    "since against go came right used take three"
).split()


# A fixed pool of sentences, Zipf-sampled below.  Web text is repetitive
# at the phrase level (boilerplate, markup, recurring wording); sampling
# whole sentences rather than independent words gives the LZSS stage the
# long matches it finds in real pages.
_SENTENCE_RNG = np.random.default_rng(0xC0FFEE)
_SENTENCES = [
    " ".join(
        _WORDS[int(_SENTENCE_RNG.integers(0, len(_WORDS)))]
        for _ in range(int(_SENTENCE_RNG.integers(6, 14)))
    ).capitalize() + "."
    for _ in range(48)
]


def synthetic_text(size_bytes: int, seed: int = 0) -> bytes:
    """About ``size_bytes`` of web-like prose (UTF-8), seeded."""
    if size_bytes < 0:
        raise WorkloadError(f"size must be >= 0, got {size_bytes}")
    if size_bytes == 0:
        return b""
    rng = np.random.default_rng(seed)
    # Zipf-ish sentence popularity: low ranks dominate, like boilerplate
    ranks = np.arange(1, len(_SENTENCES) + 1, dtype=np.float64)
    probabilities = (1.0 / ranks) / np.sum(1.0 / ranks)
    order = rng.permutation(len(_SENTENCES))  # which sentences are popular
    average = sum(map(len, _SENTENCES)) / len(_SENTENCES) + 1
    pieces: list[str] = []
    length = 0
    while length < size_bytes:
        # draw sentence picks in vectorised batches, not one at a time
        batch = max(8, int((size_bytes - length) / average * 1.2))
        choices = rng.choice(len(_SENTENCES), size=batch, p=probabilities)
        for choice in choices:
            sentence = _SENTENCES[order[int(choice)]]
            pieces.append(sentence)
            length += len(sentence) + 1
            if length >= size_bytes:
                break
    return " ".join(pieces).encode("utf-8")[:size_bytes]


def synthetic_text_message(size_bytes: int, seed: int = 0) -> MimeMessage:
    """Web-like prose wrapped as text/plain."""
    return MimeMessage(TEXT_PLAIN, synthetic_text(size_bytes, seed))


def synthetic_image_message(
    width: int = 128, height: int = 96, seed: int = 0
) -> MimeMessage:
    """A photo-like image encoded in the GIF-like palette format."""
    raster = ImageRaster.synthetic(width, height, seed=seed)
    return MimeMessage(IMAGE_GIF, encode_gif(raster))


def synthetic_ps_document(paragraphs: int = 5, seed: int = 0) -> PsDocument:
    """A formatted document: per paragraph, positioning + rules + a text run."""
    if paragraphs < 1:
        raise WorkloadError(f"need at least one paragraph, got {paragraphs}")
    rng = np.random.default_rng(seed)
    doc = PsDocument()
    doc.add("font", "Times 11")
    y = 720
    for index in range(paragraphs):
        doc.add("moveto", f"72 {y}")
        doc.add("setgray", "0.0")
        run = synthetic_text(int(rng.integers(120, 400)), seed=seed * 1000 + index)
        doc.show(run.decode("utf-8"))
        doc.add("line", f"72 {y - 6} 540 {y - 6}")
        y -= 40
        if y < 72:
            doc.add("page")
            y = 720
    doc.add("page")
    return doc


def synthetic_ps_message(paragraphs: int = 5, seed: int = 0) -> MimeMessage:
    """A PostScript-like document wrapped as application/postscript."""
    doc = synthetic_ps_document(paragraphs, seed)
    return MimeMessage(APPLICATION_POSTSCRIPT, doc)


def ps_page_message(
    *, n_images: int = 2, paragraphs: int = 4, image_size: tuple[int, int] = (128, 96),
    seed: int = 0,
) -> MimeMessage:
    """A document 'page' for the distillation app: PostScript + images."""
    if n_images < 0:
        raise WorkloadError(f"n_images must be >= 0, got {n_images}")
    parts = [synthetic_ps_message(paragraphs, seed)]
    width, height = image_size
    for index in range(n_images):
        parts.append(synthetic_image_message(width, height, seed=seed * 100 + index))
    return MimeMessage.multipart(parts)


def web_page_message(
    *, n_images: int = 2, text_bytes: int = 8 * 1024, image_size: tuple[int, int] = (128, 96),
    seed: int = 0,
) -> MimeMessage:
    """A multipart 'web page': one text part plus ``n_images`` image parts."""
    if n_images < 0:
        raise WorkloadError(f"n_images must be >= 0, got {n_images}")
    parts = [synthetic_text_message(text_bytes, seed)]
    width, height = image_size
    for index in range(n_images):
        parts.append(synthetic_image_message(width, height, seed=seed * 100 + index))
    return MimeMessage.multipart(parts)
