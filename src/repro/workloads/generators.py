"""Workload generators: streams of messages with controlled mixes.

``WebWorkload`` reproduces the section 7.5 traffic: a continuous mix of
image and text messages ("an amount of real image and text messages are
generated continuously"), with seeded randomness in sizes and ordering.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.mime.message import MimeMessage
from repro.workloads.content import synthetic_image_message, synthetic_text_message


class WebWorkload:
    """Seeded generator of mixed image/text messages."""

    def __init__(
        self,
        *,
        image_fraction: float = 0.4,
        text_bytes_range: tuple[int, int] = (2 * 1024, 16 * 1024),
        image_size_range: tuple[int, int] = (64, 160),
        seed: int = 0,
    ):
        if not 0.0 <= image_fraction <= 1.0:
            raise WorkloadError(f"image_fraction must be in [0, 1], got {image_fraction}")
        lo, hi = text_bytes_range
        if lo < 1 or hi < lo:
            raise WorkloadError(f"bad text size range {text_bytes_range}")
        slo, shi = image_size_range
        if slo < 8 or shi < slo:
            raise WorkloadError(f"bad image size range {image_size_range}")
        self._image_fraction = image_fraction
        self._text_range = text_bytes_range
        self._image_range = image_size_range
        self._seed = seed

    def messages(self, count: int) -> Iterator[MimeMessage]:
        """Yield ``count`` messages; identical for identical parameters."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        rng = np.random.default_rng(self._seed)
        for index in range(count):
            if rng.random() < self._image_fraction:
                side = int(rng.integers(self._image_range[0], self._image_range[1] + 1))
                yield synthetic_image_message(
                    width=side, height=max(8, (side * 3) // 4),
                    seed=self._seed * 10_000 + index,
                )
            else:
                size = int(rng.integers(self._text_range[0], self._text_range[1] + 1))
                yield synthetic_text_message(size, seed=self._seed * 10_000 + index)

    def total_bytes(self, count: int) -> int:
        """Total wire size of the first ``count`` messages."""
        return sum(m.total_size() for m in self.messages(count))
