"""Smoke tests: every experiment runner produces well-formed results fast.

These run with tiny sweeps so the harness logic (not its numbers) is part
of the ordinary test suite; full sweeps live in ``benchmarks/``.
"""

import pytest

from repro.bench.ablations import (
    run_channel_ablation,
    run_compile_ablation,
    run_pooling_ablation,
    run_scheduler_ablation,
)
from repro.bench.fig7_2 import run_fig7_2
from repro.bench.fig7_3 import run_fig7_3
from repro.bench.fig7_6 import reconfig_exp_mcl, run_fig7_6
from repro.bench.fig7_7 import run_cell
from repro.bench.harness import deploy_chain, redirector_chain_mcl, time_repeated
from repro.bench.reporting import format_table


class TestHarnessUtilities:
    def test_chain_mcl_generates_valid_script(self):
        from repro.apps import build_server

        server = build_server()
        table = server.compile(redirector_chain_mcl(5)).main_table()
        assert len(table.instances) == 5
        assert len(table.links) == 4

    def test_chain_requires_one(self):
        with pytest.raises(ValueError):
            redirector_chain_mcl(0)

    def test_deploy_chain(self):
        _server, stream, scheduler = deploy_chain(3)
        from repro.mime.message import MimeMessage

        stream.post(MimeMessage("text/plain", b"x"))
        scheduler.pump()
        assert len(stream.collect()) == 1

    def test_time_repeated(self):
        calls = []
        stats = time_repeated(lambda: calls.append(1), repeats=5, warmup=2)
        assert stats.count == 5
        assert len(calls) == 7

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bb" in lines[0]


class TestFigureRunners:
    def test_fig7_2_shape(self):
        result = run_fig7_2((1, 4, 8), message_kb=2, repeats=3)
        assert len(result.rows) == 3
        assert result.per_streamlet_seconds > 0

    def test_fig7_3_shape(self):
        result = run_fig7_3((10, 100), chain=8, repeats=2)
        assert len(result.rows) == 2
        assert all(ref > 0 and val > 0 for _, ref, val in result.rows)

    def test_fig7_6_shape(self):
        result = run_fig7_6((1, 5), repeats=2)
        assert [n for n, *_ in result.rows] == [1, 5]
        assert all(wall > 0 for _n, wall, *_ in result.rows)

    def test_fig7_6_bad_count(self):
        with pytest.raises(ValueError):
            reconfig_exp_mcl(0)

    def test_fig7_7_cell(self):
        cell = run_cell(100_000.0, 0.001, n_messages=3, seed=1)
        assert cell.mobigate.messages_sent == 3
        assert cell.direct.messages_sent == 3
        assert cell.speedup > 0

    def test_fig7_7_low_bandwidth_inserts_compressor(self):
        cell = run_cell(20_000.0, 0.001, n_messages=3, seed=1, image_fraction=0.0)
        assert cell.compressor_inserted


class TestAblationRunners:
    def test_pooling(self):
        result = run_pooling_ablation((2,), chain=3)
        [(n, _p, _u, pooled_ctors, unpooled_ctors)] = result.rows
        assert n == 2
        assert pooled_ctors < unpooled_ctors

    def test_channels(self):
        result = run_channel_ablation(pairs=200)
        assert {cat for cat, _ in result.rows} == {"S", "BB", "BK", "KB", "KK"}

    def test_schedulers(self):
        result = run_scheduler_ablation(chain=3, n_messages=5)
        assert dict(result.rows).keys() == {"inline", "threaded"}

    def test_compile(self):
        result = run_compile_ablation((3, 6), repeats=2)
        assert [n for n, *_ in result.rows] == [3, 6]
