"""Bench reporting: the jsonable sanitizer and BENCH_*.json artifacts."""

import json
import math
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.bench.reporting import (
    bench_output_dir,
    flag_regressions,
    jsonable,
    load_baseline,
    write_bench_json,
)
from repro.util.stats import RunningStats


@dataclass
class _Inner:
    name: str
    latency: float


@dataclass
class _Outer:
    rows: list
    stats: RunningStats
    bad: float


class TestJsonable:
    def test_dataclasses_recursively_converted(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0])
        outer = _Outer(rows=[(_Inner("a", 0.5), 2)], stats=stats, bad=math.nan)
        tree = jsonable(outer)
        assert tree["rows"] == [[{"name": "a", "latency": 0.5}, 2]]
        assert tree["stats"]["count"] == 3
        assert tree["stats"]["mean"] == 2.0
        assert tree["bad"] is None  # NaN has no strict-JSON form

    def test_non_finite_floats_become_null(self):
        assert jsonable(math.inf) is None
        assert jsonable(-math.inf) is None
        assert jsonable(float("nan")) is None

    def test_numpy_values_converted(self):
        np = __import__("numpy")
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.array([1, 2])) == [1, 2]

    def test_unknown_objects_stringified(self):
        class Odd:
            def __repr__(self):
                return "odd"

        assert isinstance(jsonable(Odd()), str)


class TestWriteBenchJson:
    def test_writes_strict_json_file(self, tmp_path):
        path = write_bench_json("demo", {"x": (1, math.inf)}, tmp_path)
        assert path == tmp_path / "BENCH_demo.json"
        body = json.loads(path.read_text())
        assert body["x"] == [1, None]
        # every dict payload is stamped with the recording host so
        # cross-machine baseline comparisons can be refused
        assert set(body["host"]) == {"cpu_count", "platform", "python"}

    def test_host_stamp_does_not_override_an_explicit_one(self, tmp_path):
        mine = {"cpu_count": 64, "platform": "other", "python": "3.0.0"}
        path = write_bench_json("demo", {"x": 1, "host": mine}, tmp_path)
        assert json.loads(path.read_text())["host"] == mine

    def test_env_var_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "out"))
        assert bench_output_dir() == tmp_path / "out"
        path = write_bench_json("env", [1, 2])
        assert path.parent == tmp_path / "out"
        assert json.loads(path.read_text()) == [1, 2]

    def test_default_is_working_directory(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        path = write_bench_json("cwd", {"ok": True})
        assert path.resolve() == (tmp_path / "BENCH_cwd.json").resolve()


@dataclass
class _BenchRow:
    engine: str
    throughput_msgs_per_sec: float


@dataclass
class _BenchResult:
    rows: list


class TestBaselineRegressions:
    def baseline(self, tmp_path, rows):
        write_bench_json("demo", {"rows": rows}, tmp_path)
        return tmp_path

    def test_load_baseline_missing_returns_none(self, tmp_path):
        assert load_baseline("demo", tmp_path) is None

    def test_load_baseline_reads_committed_json(self, tmp_path):
        directory = self.baseline(tmp_path, [{"engine": "x"}])
        loaded = load_baseline("demo", directory)
        assert loaded["rows"] == [{"engine": "x"}]

    def test_load_baseline_rejects_corrupt_json(self, tmp_path):
        (tmp_path / "BENCH_demo.json").write_text("{nope")
        assert load_baseline("demo", tmp_path) is None

    def test_no_baseline_means_no_warnings(self, tmp_path):
        result = _BenchResult(rows=[_BenchRow("threaded", 10.0)])
        assert flag_regressions("demo", result, directory=tmp_path) == []

    def test_drop_beyond_threshold_is_flagged(self, tmp_path):
        directory = self.baseline(
            tmp_path,
            [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}],
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 80.0)])
        warnings = flag_regressions("demo", result, directory=directory)
        assert len(warnings) == 1
        assert "REGRESSION" in warnings[0] and "threaded" in warnings[0]

    def test_drop_within_threshold_passes(self, tmp_path):
        directory = self.baseline(
            tmp_path,
            [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}],
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 95.0)])
        assert flag_regressions("demo", result, directory=directory) == []

    def test_improvement_passes(self, tmp_path):
        directory = self.baseline(
            tmp_path,
            [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}],
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 260.0)])
        assert flag_regressions("demo", result, directory=directory) == []

    def test_rows_missing_from_baseline_are_ignored(self, tmp_path):
        directory = self.baseline(
            tmp_path,
            [{"engine": "inline", "throughput_msgs_per_sec": 100.0}],
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 1.0)])
        assert flag_regressions("demo", result, directory=directory) == []


class TestCrossHostRefusal:
    """A baseline recorded on different hardware is not a regression
    baseline — comparing against it must be refused, not warned about."""

    def baseline(self, tmp_path, host):
        write_bench_json(
            "demo",
            {
                "rows": [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}],
                "host": host,
            },
            tmp_path,
        )
        return tmp_path

    def test_different_host_skips_instead_of_flagging(self, tmp_path):
        directory = self.baseline(
            tmp_path, {"cpu_count": 128, "platform": "weird", "python": "9.9.9"}
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 10.0)])
        warnings = flag_regressions("demo", result, directory=directory)
        assert len(warnings) == 1
        assert "SKIP" in warnings[0] and "different host" in warnings[0]
        assert "REGRESSION" not in warnings[0]

    def test_same_host_still_flags(self, tmp_path):
        from repro.bench.reporting import host_metadata

        directory = self.baseline(tmp_path, host_metadata())
        result = _BenchResult(rows=[_BenchRow("threaded", 10.0)])
        warnings = flag_regressions("demo", result, directory=directory)
        assert len(warnings) == 1 and "REGRESSION" in warnings[0]

    def test_legacy_baseline_without_host_is_compared(self, tmp_path):
        # pre-host baselines keep working: no fingerprint, no refusal
        (tmp_path / "BENCH_demo.json").write_text(
            json.dumps(
                {"rows": [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}]}
            )
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 10.0)])
        warnings = flag_regressions("demo", result, directory=tmp_path)
        assert len(warnings) == 1 and "REGRESSION" in warnings[0]


@dataclass
class _LatencyRow:
    scenario: str
    p99_ms: float


class TestDirectionHandling:
    """``direction`` decides which way a delta regresses — a p99 rise must
    warn under ``"lower"`` even though the same delta would pass as an
    improvement under the throughput default."""

    def baseline(self, tmp_path, rows):
        write_bench_json("demo", {"rows": rows}, tmp_path)
        return tmp_path

    def latency_result(self, p99):
        return _BenchResult(rows=[_LatencyRow("burst", p99)])

    def test_lower_flags_a_rise(self, tmp_path):
        directory = self.baseline(tmp_path, [{"scenario": "burst", "p99_ms": 10.0}])
        warnings = flag_regressions(
            "demo", self.latency_result(14.0), directory=directory,
            key="scenario", metric="p99_ms", direction="lower",
        )
        assert len(warnings) == 1
        assert "REGRESSION" in warnings[0] and "above baseline" in warnings[0]

    def test_lower_passes_a_drop(self, tmp_path):
        # latency *improving* must never warn
        directory = self.baseline(tmp_path, [{"scenario": "burst", "p99_ms": 10.0}])
        assert flag_regressions(
            "demo", self.latency_result(4.0), directory=directory,
            key="scenario", metric="p99_ms", direction="lower",
        ) == []

    def test_lower_passes_a_rise_within_threshold(self, tmp_path):
        directory = self.baseline(tmp_path, [{"scenario": "burst", "p99_ms": 10.0}])
        assert flag_regressions(
            "demo", self.latency_result(10.5), directory=directory,
            key="scenario", metric="p99_ms", direction="lower",
        ) == []

    def test_higher_passes_a_rise(self, tmp_path):
        directory = self.baseline(
            tmp_path, [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}]
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 150.0)])
        assert flag_regressions("demo", result, directory=directory) == []

    def test_unknown_direction_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="direction"):
            flag_regressions(
                "demo", _BenchResult(rows=[]), directory=tmp_path,
                direction="sideways",
            )


class TestRegressionRegistry:
    """Every CI-wired baseline comparison declares the correct direction and
    actually fires through ``flag_regressions``."""

    def registry(self):
        from repro.bench.__main__ import REGRESSION_CHECKS

        return REGRESSION_CHECKS

    def test_every_target_is_known_and_ci_wired(self):
        from repro.bench.__main__ import ALL_TARGETS

        ci = Path(__file__).parents[2] / ".github" / "workflows" / "ci.yml"
        smoke = next(
            line for line in ci.read_text().splitlines()
            if "python -m repro.bench" in line
        )
        for target in self.registry():
            assert target in ALL_TARGETS
            assert f" {target} " in smoke or smoke.rstrip().endswith(target)

    def test_directions_match_metric_semantics(self):
        for target, checks in self.registry().items():
            for key, metric, direction in checks:
                assert direction in ("higher", "lower"), (target, metric)
                latency_like = (
                    metric.endswith("_ms") or metric.endswith("_seconds")
                )
                assert direction == ("lower" if latency_like else "higher"), (
                    f"{target}/{metric}: latency-like metrics must be "
                    f"'lower', throughput-like 'higher'"
                )

    def test_gateway_p99_is_checked_lower(self):
        # the registry's reason to exist: a p99 blow-up must not be able
        # to ride through as an "improvement"
        assert ("scenario", "p99_ms", "lower") in self.registry()["gateway"]

    def test_each_registered_check_fires_on_a_regression(self, tmp_path):
        for target, checks in self.registry().items():
            for key, metric, direction in checks:
                baseline_row = {key: "probe", metric: 100.0}
                write_bench_json(target, {"rows": [baseline_row]}, tmp_path)
                regressed = 50.0 if direction == "higher" else 200.0
                warnings = flag_regressions(
                    target, {"rows": [{key: "probe", metric: regressed}]},
                    directory=tmp_path, key=key, metric=metric,
                    direction=direction,
                )
                assert len(warnings) == 1, (target, metric)


class TestTelemetryOverheadBench:
    def test_tiny_run_produces_sane_result(self):
        from repro.bench.telemetry_overhead import run_telemetry_overhead

        result = run_telemetry_overhead(
            chain_length=3, rounds=2, passes_per_round=2, warmup=2
        )
        assert result.noop_pass_seconds > 0
        assert result.enabled_pass_seconds > 0
        assert math.isfinite(result.overhead_fraction)
        assert jsonable(result)["chain_length"] == 3
