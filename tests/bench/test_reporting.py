"""Bench reporting: the jsonable sanitizer and BENCH_*.json artifacts."""

import json
import math
from dataclasses import dataclass

from repro.bench.reporting import bench_output_dir, jsonable, write_bench_json
from repro.util.stats import RunningStats


@dataclass
class _Inner:
    name: str
    latency: float


@dataclass
class _Outer:
    rows: list
    stats: RunningStats
    bad: float


class TestJsonable:
    def test_dataclasses_recursively_converted(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0])
        outer = _Outer(rows=[(_Inner("a", 0.5), 2)], stats=stats, bad=math.nan)
        tree = jsonable(outer)
        assert tree["rows"] == [[{"name": "a", "latency": 0.5}, 2]]
        assert tree["stats"]["count"] == 3
        assert tree["stats"]["mean"] == 2.0
        assert tree["bad"] is None  # NaN has no strict-JSON form

    def test_non_finite_floats_become_null(self):
        assert jsonable(math.inf) is None
        assert jsonable(-math.inf) is None
        assert jsonable(float("nan")) is None

    def test_numpy_values_converted(self):
        np = __import__("numpy")
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.array([1, 2])) == [1, 2]

    def test_unknown_objects_stringified(self):
        class Odd:
            def __repr__(self):
                return "odd"

        assert isinstance(jsonable(Odd()), str)


class TestWriteBenchJson:
    def test_writes_strict_json_file(self, tmp_path):
        path = write_bench_json("demo", {"x": (1, math.inf)}, tmp_path)
        assert path == tmp_path / "BENCH_demo.json"
        assert json.loads(path.read_text()) == {"x": [1, None]}

    def test_env_var_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "out"))
        assert bench_output_dir() == tmp_path / "out"
        path = write_bench_json("env", [1, 2])
        assert path.parent == tmp_path / "out"
        assert json.loads(path.read_text()) == [1, 2]

    def test_default_is_working_directory(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        path = write_bench_json("cwd", {"ok": True})
        assert path.resolve() == (tmp_path / "BENCH_cwd.json").resolve()


class TestTelemetryOverheadBench:
    def test_tiny_run_produces_sane_result(self):
        from repro.bench.telemetry_overhead import run_telemetry_overhead

        result = run_telemetry_overhead(
            chain_length=3, rounds=2, passes_per_round=2, warmup=2
        )
        assert result.noop_pass_seconds > 0
        assert result.enabled_pass_seconds > 0
        assert math.isfinite(result.overhead_fraction)
        assert jsonable(result)["chain_length"] == 3
