"""Bench reporting: the jsonable sanitizer and BENCH_*.json artifacts."""

import json
import math
from dataclasses import dataclass

from repro.bench.reporting import (
    bench_output_dir,
    flag_regressions,
    jsonable,
    load_baseline,
    write_bench_json,
)
from repro.util.stats import RunningStats


@dataclass
class _Inner:
    name: str
    latency: float


@dataclass
class _Outer:
    rows: list
    stats: RunningStats
    bad: float


class TestJsonable:
    def test_dataclasses_recursively_converted(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0])
        outer = _Outer(rows=[(_Inner("a", 0.5), 2)], stats=stats, bad=math.nan)
        tree = jsonable(outer)
        assert tree["rows"] == [[{"name": "a", "latency": 0.5}, 2]]
        assert tree["stats"]["count"] == 3
        assert tree["stats"]["mean"] == 2.0
        assert tree["bad"] is None  # NaN has no strict-JSON form

    def test_non_finite_floats_become_null(self):
        assert jsonable(math.inf) is None
        assert jsonable(-math.inf) is None
        assert jsonable(float("nan")) is None

    def test_numpy_values_converted(self):
        np = __import__("numpy")
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.array([1, 2])) == [1, 2]

    def test_unknown_objects_stringified(self):
        class Odd:
            def __repr__(self):
                return "odd"

        assert isinstance(jsonable(Odd()), str)


class TestWriteBenchJson:
    def test_writes_strict_json_file(self, tmp_path):
        path = write_bench_json("demo", {"x": (1, math.inf)}, tmp_path)
        assert path == tmp_path / "BENCH_demo.json"
        assert json.loads(path.read_text()) == {"x": [1, None]}

    def test_env_var_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "out"))
        assert bench_output_dir() == tmp_path / "out"
        path = write_bench_json("env", [1, 2])
        assert path.parent == tmp_path / "out"
        assert json.loads(path.read_text()) == [1, 2]

    def test_default_is_working_directory(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        path = write_bench_json("cwd", {"ok": True})
        assert path.resolve() == (tmp_path / "BENCH_cwd.json").resolve()


@dataclass
class _BenchRow:
    engine: str
    throughput_msgs_per_sec: float


@dataclass
class _BenchResult:
    rows: list


class TestBaselineRegressions:
    def baseline(self, tmp_path, rows):
        write_bench_json("demo", {"rows": rows}, tmp_path)
        return tmp_path

    def test_load_baseline_missing_returns_none(self, tmp_path):
        assert load_baseline("demo", tmp_path) is None

    def test_load_baseline_reads_committed_json(self, tmp_path):
        directory = self.baseline(tmp_path, [{"engine": "x"}])
        assert load_baseline("demo", directory) == {"rows": [{"engine": "x"}]}

    def test_load_baseline_rejects_corrupt_json(self, tmp_path):
        (tmp_path / "BENCH_demo.json").write_text("{nope")
        assert load_baseline("demo", tmp_path) is None

    def test_no_baseline_means_no_warnings(self, tmp_path):
        result = _BenchResult(rows=[_BenchRow("threaded", 10.0)])
        assert flag_regressions("demo", result, directory=tmp_path) == []

    def test_drop_beyond_threshold_is_flagged(self, tmp_path):
        directory = self.baseline(
            tmp_path,
            [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}],
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 80.0)])
        warnings = flag_regressions("demo", result, directory=directory)
        assert len(warnings) == 1
        assert "REGRESSION" in warnings[0] and "threaded" in warnings[0]

    def test_drop_within_threshold_passes(self, tmp_path):
        directory = self.baseline(
            tmp_path,
            [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}],
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 95.0)])
        assert flag_regressions("demo", result, directory=directory) == []

    def test_improvement_passes(self, tmp_path):
        directory = self.baseline(
            tmp_path,
            [{"engine": "threaded", "throughput_msgs_per_sec": 100.0}],
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 260.0)])
        assert flag_regressions("demo", result, directory=directory) == []

    def test_rows_missing_from_baseline_are_ignored(self, tmp_path):
        directory = self.baseline(
            tmp_path,
            [{"engine": "inline", "throughput_msgs_per_sec": 100.0}],
        )
        result = _BenchResult(rows=[_BenchRow("threaded", 1.0)])
        assert flag_regressions("demo", result, directory=directory) == []


class TestTelemetryOverheadBench:
    def test_tiny_run_produces_sane_result(self):
        from repro.bench.telemetry_overhead import run_telemetry_overhead

        result = run_telemetry_overhead(
            chain_length=3, rounds=2, passes_per_round=2, warmup=2
        )
        assert result.noop_pass_seconds > 0
        assert result.enabled_pass_seconds > 0
        assert math.isfinite(result.overhead_fraction)
        assert jsonable(result)["chain_length"] == 3
