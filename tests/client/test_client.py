import pytest

from repro.client import ClientStreamletPool, MessageDistributor, MobiGateClient
from repro.client.peers import PeerStreamlet
from repro.errors import DistributorError, PeerNotFoundError
from repro.mime.mediatype import TEXT_PLAIN
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import StreamletContext
from repro.streamlets import (
    ENCRYPTOR_DEF,
    POWER_SAVING_DEF,
    TEXT_COMPRESS_DEF,
    Encryptor,
    PowerSaving,
    TextCompress,
)
from repro.workloads.content import synthetic_text_message


def ctx(**params):
    return StreamletContext("srv", params=params)


def server_transform(streamlet, message, **params):
    """Apply a server streamlet and simulate the runtime's peer push."""
    [(_, out)] = streamlet.process("pi", message, ctx(**params))
    if streamlet.peer_id:
        out.headers.push_peer(streamlet.peer_id)
    return out


class TestClientStreamletPool:
    def test_builtin_peers_known(self):
        pool = ClientStreamletPool()
        assert {"text_decompress", "decryptor", "client_cache", "unbundler"} <= pool.known_peers()

    def test_lazy_singleton(self):
        pool = ClientStreamletPool()
        a = pool.acquire("text_decompress")
        b = pool.acquire("text_decompress")
        assert a is b
        assert pool.live_count() == 1

    def test_unknown_peer(self):
        with pytest.raises(PeerNotFoundError):
            ClientStreamletPool().acquire("ghost")

    def test_destroy_recreates(self):
        pool = ClientStreamletPool()
        a = pool.acquire("unbundler")
        assert pool.destroy("unbundler")
        assert not pool.destroy("unbundler")
        assert pool.acquire("unbundler") is not a

    def test_register_custom(self):
        class Custom(PeerStreamlet):
            def __init__(self):
                super().__init__("custom")

        pool = ClientStreamletPool()
        pool.register("custom", Custom)
        assert isinstance(pool.acquire("custom"), Custom)


class TestDistributor:
    def test_plain_message_untouched(self):
        dist = MessageDistributor(ClientStreamletPool())
        msg = MimeMessage(TEXT_PLAIN, b"plain")
        assert dist.distribute(msg) == [msg]

    def test_reverses_compression(self):
        dist = MessageDistributor(ClientStreamletPool())
        original = synthetic_text_message(2048, seed=1)
        payload = original.body
        wire = server_transform(TextCompress("c", TEXT_COMPRESS_DEF), original)
        [out] = dist.distribute(wire)
        assert out.body == payload

    def test_lifo_unwind_compress_then_encrypt(self):
        # server order: compress, then encrypt => client decrypts first
        dist = MessageDistributor(ClientStreamletPool())
        original = synthetic_text_message(2048, seed=2)
        payload = original.body
        wire = server_transform(TextCompress("c", TEXT_COMPRESS_DEF), original)
        wire = server_transform(Encryptor("e", ENCRYPTOR_DEF), wire)
        assert wire.headers.peer_stack() == ["text_decompress", "decryptor"]
        [out] = dist.distribute(wire)
        assert out.body == payload

    def test_unbundling_splits_with_nested_stacks(self):
        compressor = TextCompress("c", TEXT_COMPRESS_DEF)
        bundler = PowerSaving("p", POWER_SAVING_DEF)
        payloads = []
        bundle = None
        for i in range(3):
            msg = synthetic_text_message(1024, seed=10 + i)
            payloads.append(msg.body)
            compressed = server_transform(compressor, msg)
            emissions = bundler.process("pi", compressed, ctx(bundle=3))
            if emissions:
                [(_, bundle)] = emissions
                bundle.headers.push_peer(bundler.peer_id)
        assert bundle is not None
        dist = MessageDistributor(ClientStreamletPool())
        outs = dist.distribute(bundle)
        assert [m.body for m in outs] == payloads

    def test_unknown_peer_raises(self):
        dist = MessageDistributor(ClientStreamletPool(include_builtin=False))
        msg = MimeMessage(TEXT_PLAIN, b"x")
        msg.headers.push_peer("nonexistent")
        with pytest.raises(PeerNotFoundError):
            dist.distribute(msg)

    def test_non_message_rejected(self):
        dist = MessageDistributor(ClientStreamletPool())
        with pytest.raises(DistributorError):
            dist.distribute(b"raw bytes")  # type: ignore[arg-type]

    def test_threaded_workers(self):
        pool = ClientStreamletPool()
        dist = MessageDistributor(pool)
        delivered = []
        dist.start(delivered.append, workers=3)
        try:
            compressor = TextCompress("c", TEXT_COMPRESS_DEF)
            originals = []
            for i in range(20):
                msg = synthetic_text_message(512, seed=100 + i)
                originals.append(msg.body)
                dist.submit(server_transform(compressor, msg))
            dist.drain()
        finally:
            dist.stop()
        assert sorted(m.body for m in delivered) == sorted(originals)

    def test_submit_before_start_rejected(self):
        dist = MessageDistributor(ClientStreamletPool())
        with pytest.raises(DistributorError):
            dist.submit(MimeMessage(TEXT_PLAIN, b"x"))


class TestMobiGateClient:
    def test_receive_counts_and_delivers(self):
        client = MobiGateClient()
        msg = synthetic_text_message(256, seed=3)
        wire_size = msg.total_size()
        results = client.receive(msg)
        assert results == [msg]
        assert client.bytes_received == wire_size
        assert client.take_delivered() == [msg]
        assert client.take_delivered() == []

    def test_on_deliver_callback(self):
        seen = []
        client = MobiGateClient(on_deliver=seen.append)
        client.receive(synthetic_text_message(64, seed=4))
        assert len(seen) == 1
