import pytest

from repro.client import ClientStreamletPool, MessageDistributor, MobiGateClient
from repro.client.peers import PeerStreamlet
from repro.errors import ClientError, DistributorError, PeerNotFoundError
from repro.mime.mediatype import TEXT_PLAIN
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import StreamletContext
from repro.streamlets import (
    ENCRYPTOR_DEF,
    POWER_SAVING_DEF,
    TEXT_COMPRESS_DEF,
    Encryptor,
    PowerSaving,
    TextCompress,
)
from repro.workloads.content import synthetic_text_message


def ctx(**params):
    return StreamletContext("srv", params=params)


def server_transform(streamlet, message, **params):
    """Apply a server streamlet and simulate the runtime's peer push."""
    [(_, out)] = streamlet.process("pi", message, ctx(**params))
    if streamlet.peer_id:
        out.headers.push_peer(streamlet.peer_id)
    return out


class TestClientStreamletPool:
    def test_builtin_peers_known(self):
        pool = ClientStreamletPool()
        assert {"text_decompress", "decryptor", "client_cache", "unbundler"} <= pool.known_peers()

    def test_lazy_singleton(self):
        pool = ClientStreamletPool()
        a = pool.acquire("text_decompress")
        b = pool.acquire("text_decompress")
        assert a is b
        assert pool.live_count() == 1

    def test_unknown_peer(self):
        with pytest.raises(PeerNotFoundError):
            ClientStreamletPool().acquire("ghost")

    def test_destroy_recreates(self):
        pool = ClientStreamletPool()
        a = pool.acquire("unbundler")
        assert pool.destroy("unbundler")
        assert not pool.destroy("unbundler")
        assert pool.acquire("unbundler") is not a

    def test_register_custom(self):
        class Custom(PeerStreamlet):
            def __init__(self):
                super().__init__("custom")

        pool = ClientStreamletPool()
        pool.register("custom", Custom)
        assert isinstance(pool.acquire("custom"), Custom)


class TestDistributor:
    def test_plain_message_untouched(self):
        dist = MessageDistributor(ClientStreamletPool())
        msg = MimeMessage(TEXT_PLAIN, b"plain")
        assert dist.distribute(msg) == [msg]

    def test_reverses_compression(self):
        dist = MessageDistributor(ClientStreamletPool())
        original = synthetic_text_message(2048, seed=1)
        payload = original.body
        wire = server_transform(TextCompress("c", TEXT_COMPRESS_DEF), original)
        [out] = dist.distribute(wire)
        assert out.body == payload

    def test_lifo_unwind_compress_then_encrypt(self):
        # server order: compress, then encrypt => client decrypts first
        dist = MessageDistributor(ClientStreamletPool())
        original = synthetic_text_message(2048, seed=2)
        payload = original.body
        wire = server_transform(TextCompress("c", TEXT_COMPRESS_DEF), original)
        wire = server_transform(Encryptor("e", ENCRYPTOR_DEF), wire)
        assert wire.headers.peer_stack() == ["text_decompress", "decryptor"]
        [out] = dist.distribute(wire)
        assert out.body == payload

    def test_unbundling_splits_with_nested_stacks(self):
        compressor = TextCompress("c", TEXT_COMPRESS_DEF)
        bundler = PowerSaving("p", POWER_SAVING_DEF)
        payloads = []
        bundle = None
        for i in range(3):
            msg = synthetic_text_message(1024, seed=10 + i)
            payloads.append(msg.body)
            compressed = server_transform(compressor, msg)
            emissions = bundler.process("pi", compressed, ctx(bundle=3))
            if emissions:
                [(_, bundle)] = emissions
                bundle.headers.push_peer(bundler.peer_id)
        assert bundle is not None
        dist = MessageDistributor(ClientStreamletPool())
        outs = dist.distribute(bundle)
        assert [m.body for m in outs] == payloads

    def test_unknown_peer_raises(self):
        dist = MessageDistributor(ClientStreamletPool(include_builtin=False))
        msg = MimeMessage(TEXT_PLAIN, b"x")
        msg.headers.push_peer("nonexistent")
        with pytest.raises(PeerNotFoundError):
            dist.distribute(msg)

    def test_non_message_rejected(self):
        dist = MessageDistributor(ClientStreamletPool())
        with pytest.raises(DistributorError):
            dist.distribute(b"raw bytes")  # type: ignore[arg-type]

    def test_threaded_workers(self):
        pool = ClientStreamletPool()
        dist = MessageDistributor(pool)
        delivered = []
        dist.start(delivered.append, workers=3)
        try:
            compressor = TextCompress("c", TEXT_COMPRESS_DEF)
            originals = []
            for i in range(20):
                msg = synthetic_text_message(512, seed=100 + i)
                originals.append(msg.body)
                dist.submit(server_transform(compressor, msg))
            dist.drain()
        finally:
            dist.stop()
        assert sorted(m.body for m in delivered) == sorted(originals)

    def test_submit_before_start_rejected(self):
        dist = MessageDistributor(ClientStreamletPool())
        with pytest.raises(DistributorError):
            dist.submit(MimeMessage(TEXT_PLAIN, b"x"))


class TestMobiGateClient:
    def test_receive_counts_and_delivers(self):
        client = MobiGateClient()
        msg = synthetic_text_message(256, seed=3)
        wire_size = msg.total_size()
        results = client.receive(msg)
        assert results == [msg]
        assert client.bytes_received == wire_size
        assert client.take_delivered() == [msg]
        assert client.take_delivered() == []

    def test_on_deliver_callback(self):
        seen = []
        client = MobiGateClient(on_deliver=seen.append)
        client.receive(synthetic_text_message(64, seed=4))
        assert len(seen) == 1


class TestEpochSwapAndDeadLetters:
    """Client hardening: epoch-staged peer swaps, structured dead-letters."""

    class CustomPeer(PeerStreamlet):
        def __init__(self):
            super().__init__("custom")

    @staticmethod
    def message(body=b"x", peer=None, epoch=None):
        msg = MimeMessage(TEXT_PLAIN, body)
        if peer is not None:
            msg.headers.push_peer(peer)
        if epoch is not None:
            msg.headers.set("Content-Session", "sess-1")
            msg.headers.set_epoch(epoch)
        return msg

    def client(self):
        return MobiGateClient(pool=ClientStreamletPool(include_builtin=False))

    def test_unknown_peer_parks_instead_of_raising(self):
        client = self.client()
        out = client.receive(self.message(peer="ghost"))
        assert out == []
        [dl] = client.dead_letters
        assert dl.reason == "unknown-peer"
        assert dl.peer_id == "ghost"
        assert isinstance(dl.error, PeerNotFoundError)
        assert client.delivered == []

    def test_staged_registration_applies_at_epoch_boundary(self):
        client = self.client()
        client.stage_epoch(1, {"custom": self.CustomPeer})
        # pre-swap: the peer does not exist yet
        client.receive(self.message(peer="custom"))
        assert client.dead_letters[-1].reason == "unknown-peer"
        # the first epoch-1 message swaps the chain, then delivers
        out = client.receive(self.message(peer="custom", epoch=1))
        assert len(out) == 1
        assert client.epoch == 1
        assert client.pool.known_peers() == {"custom"}

    def test_stale_epoch_peer_becomes_stale_dead_letter(self):
        client = self.client()
        client.register_peer("custom", self.CustomPeer)
        client.stage_epoch(1, {"custom": None})
        assert len(client.receive(self.message(epoch=1))) == 1  # swap: custom gone
        straggler = self.message(peer="custom", epoch=0)
        assert client.receive(straggler) == []
        [dl] = client.dead_letters
        assert dl.reason == "stale-peer"
        assert dl.epoch == 0

    def test_malformed_epoch_parked(self):
        client = self.client()
        msg = MimeMessage(TEXT_PLAIN, b"x")
        msg.headers.set("Content-Session", "sess-1;epoch=banana")
        assert client.receive(msg) == []
        assert client.dead_letters[-1].reason == "malformed-epoch"

    def test_stage_behind_current_epoch_rejected(self):
        client = self.client()
        client.stage_epoch(1, {})
        client.receive(self.message(epoch=1))
        with pytest.raises(ClientError):
            client.stage_epoch(1, {})

    def test_epoch_gap_applies_all_staged_steps(self):
        client = self.client()
        client.stage_epoch(1, {"custom": self.CustomPeer})
        client.stage_epoch(2, {"other": self.CustomPeer})
        # epoch 3 arrives first: both staged swaps apply, in order
        client.receive(self.message(epoch=3))
        assert client.epoch == 3
        assert client.pool.known_peers() == {"custom", "other"}

    def test_unregister_drops_factory_and_instance(self):
        pool = ClientStreamletPool(include_builtin=False)
        pool.register("custom", self.CustomPeer)
        pool.acquire("custom")
        assert pool.unregister("custom")
        assert not pool.unregister("custom")
        assert pool.known_peers() == frozenset()
        with pytest.raises(PeerNotFoundError):
            pool.acquire("custom")
