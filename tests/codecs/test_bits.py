import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.bits import BitReader, BitWriter
from repro.errors import CodecError


class TestBitWriter:
    def test_empty(self):
        assert BitWriter().getvalue() == b""

    def test_single_byte(self):
        w = BitWriter()
        w.write_bits(0xAB, 8)
        assert w.getvalue() == b"\xab"

    def test_padding(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])

    def test_cross_byte(self):
        w = BitWriter()
        w.write_bits(0b1111, 4)
        w.write_bits(0b00001111, 8)
        assert w.getvalue() == bytes([0b11110000, 0b11110000])

    def test_value_too_wide_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(4, 2)

    def test_bit_length(self):
        w = BitWriter()
        w.write_bits(0, 13)
        assert w.bit_length() == 13

    def test_write_bit(self):
        w = BitWriter()
        for b in [1, 0, 1, 0, 1, 0, 1, 0]:
            w.write_bit(b)
        assert w.getvalue() == bytes([0b10101010])


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(b"\xab")
        assert r.read_bits(8) == 0xAB

    def test_read_bit_sequence(self):
        r = BitReader(bytes([0b11001010]))
        assert [r.read_bit() for _ in range(8)] == [1, 1, 0, 0, 1, 0, 1, 0]

    def test_start_byte_offset(self):
        r = BitReader(b"\x00\xff", start_byte=1)
        assert r.read_bits(8) == 0xFF

    def test_exhaustion(self):
        r = BitReader(b"\x00")
        r.read_bits(8)
        with pytest.raises(CodecError):
            r.read_bit()

    def test_overread(self):
        with pytest.raises(CodecError):
            BitReader(b"\x00").read_bits(9)

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        r.read_bits(3)
        assert r.bits_remaining == 13


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**20 - 1),
                          st.integers(min_value=20, max_value=20)), max_size=50))
def test_roundtrip_fixed_width(items):
    w = BitWriter()
    for value, width in items:
        w.write_bits(value, width)
    r = BitReader(w.getvalue())
    for value, width in items:
        assert r.read_bits(width) == value


@given(st.binary(max_size=256))
def test_roundtrip_bytes(data):
    w = BitWriter()
    for byte in data:
        w.write_bits(byte, 8)
    assert w.getvalue() == data
