import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.cipher import StreamCipher
from repro.errors import CodecError


class TestStreamCipher:
    def test_roundtrip(self):
        cipher = StreamCipher(b"key")
        ct = cipher.encrypt(b"attack at dawn", b"nonce1")
        assert cipher.decrypt(ct, b"nonce1") == b"attack at dawn"

    def test_ciphertext_differs_from_plaintext(self):
        cipher = StreamCipher(b"key")
        pt = b"a" * 64
        assert cipher.encrypt(pt, b"n") != pt

    def test_nonce_changes_keystream(self):
        cipher = StreamCipher(b"key")
        pt = b"same plaintext bytes"
        assert cipher.encrypt(pt, b"n1") != cipher.encrypt(pt, b"n2")

    def test_key_changes_keystream(self):
        pt = b"same plaintext bytes"
        assert StreamCipher(b"k1").encrypt(pt, b"n") != StreamCipher(b"k2").encrypt(pt, b"n")

    def test_wrong_nonce_garbles(self):
        cipher = StreamCipher(b"key")
        ct = cipher.encrypt(b"secret messages here", b"right")
        assert cipher.decrypt(ct, b"wrong") != b"secret messages here"

    def test_empty_plaintext(self):
        cipher = StreamCipher(b"key")
        assert cipher.encrypt(b"", b"n") == b""

    def test_size_preserved(self):
        cipher = StreamCipher(b"key")
        for n in [1, 17, 256, 1000]:
            assert len(cipher.encrypt(b"x" * n, b"n")) == n

    def test_empty_key_rejected(self):
        with pytest.raises(CodecError):
            StreamCipher(b"")

    def test_oversized_key_rejected(self):
        with pytest.raises(CodecError):
            StreamCipher(b"k" * 257)

    def test_empty_nonce_rejected(self):
        with pytest.raises(CodecError):
            StreamCipher(b"key").encrypt(b"data", b"")

    def test_keystream_roughly_balanced(self):
        # weak statistical sanity: about half the bits flip
        cipher = StreamCipher(b"balance-test-key")
        ct = cipher.encrypt(bytes(4096), b"nonce")
        ones = sum(bin(b).count("1") for b in ct)
        assert 0.45 < ones / (4096 * 8) < 0.55


@settings(deadline=None, max_examples=50)
@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=32),
       st.binary(max_size=2048))
def test_roundtrip_property(key, nonce, plaintext):
    cipher = StreamCipher(key)
    assert cipher.decrypt(cipher.encrypt(plaintext, nonce), nonce) == plaintext
