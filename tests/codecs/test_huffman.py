import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.huffman import huffman_decode, huffman_encode
from repro.errors import CodecError


class TestHuffman:
    def test_empty(self):
        assert huffman_decode(huffman_encode(b"")) == b""

    def test_single_symbol_stream(self):
        data = b"a" * 100
        assert huffman_decode(huffman_encode(data)) == data

    def test_two_symbols(self):
        data = b"ab" * 50
        assert huffman_decode(huffman_encode(data)) == data

    def test_english_text_compresses(self):
        text = (b"the quick brown fox jumps over the lazy dog " * 100)
        encoded = huffman_encode(text)
        # header is 260 bytes; entropy coding must win on the body
        assert len(encoded) < len(text)

    def test_skewed_distribution_near_entropy(self):
        data = b"a" * 10000 + b"b" * 100
        encoded = huffman_encode(data)
        assert len(encoded) < len(data) / 4

    def test_all_256_symbols(self):
        data = bytes(range(256)) * 3
        assert huffman_decode(huffman_encode(data)) == data

    def test_truncated_header_raises(self):
        with pytest.raises(CodecError):
            huffman_decode(b"\x00\x00")

    def test_missing_codebook_raises(self):
        # claims 5 bytes but all code lengths zero
        bogus = (5).to_bytes(4, "little") + bytes(256)
        with pytest.raises(CodecError):
            huffman_decode(bogus)


@given(st.binary(max_size=4096))
def test_roundtrip(data):
    assert huffman_decode(huffman_encode(data)) == data


@given(st.text(alphabet="abcde \n", max_size=2000))
def test_roundtrip_small_alphabet(text):
    data = text.encode()
    assert huffman_decode(huffman_encode(data)) == data
