import numpy as np
import pytest

from repro.codecs.imagefmt import (
    ImageRaster,
    decode_gif,
    decode_jpeg,
    downsample,
    encode_gif,
    encode_jpeg,
    quantize_grays,
)
from repro.errors import CodecError


@pytest.fixture
def photo():
    return ImageRaster.synthetic(96, 64, seed=3)


class TestImageRaster:
    def test_shape_properties(self, photo):
        assert photo.width == 96
        assert photo.height == 64

    def test_bad_shape_rejected(self):
        with pytest.raises(CodecError):
            ImageRaster(np.zeros((4, 4), dtype=np.uint8))

    def test_bad_dtype_rejected(self):
        with pytest.raises(CodecError):
            ImageRaster(np.zeros((4, 4, 3), dtype=np.float64))

    def test_empty_rejected(self):
        with pytest.raises(CodecError):
            ImageRaster(np.zeros((0, 4, 3), dtype=np.uint8))

    def test_size_bytes(self, photo):
        assert photo.size_bytes() == 96 * 64 * 3

    def test_clone_independent(self, photo):
        copy = photo.clone()
        copy.pixels[0, 0, 0] ^= 0xFF
        assert photo != copy

    def test_synthetic_deterministic(self):
        a = ImageRaster.synthetic(32, 32, seed=5)
        b = ImageRaster.synthetic(32, 32, seed=5)
        assert a == b

    def test_synthetic_seed_varies(self):
        assert ImageRaster.synthetic(32, 32, seed=1) != ImageRaster.synthetic(32, 32, seed=2)


class TestGifLike:
    def test_roundtrip_preserves_dimensions(self, photo):
        decoded = decode_gif(encode_gif(photo))
        assert (decoded.width, decoded.height) == (photo.width, photo.height)

    def test_palette_quantisation_error_bounded(self, photo):
        decoded = decode_gif(encode_gif(photo))
        err = np.abs(decoded.pixels.astype(int) - photo.pixels.astype(int))
        # 3-3-2: worst channel quantisation error is one bucket
        assert err[:, :, 0].max() <= 16
        assert err[:, :, 1].max() <= 16
        assert err[:, :, 2].max() <= 32

    def test_flat_image_tiny(self):
        flat = ImageRaster(np.full((64, 64, 3), 200, dtype=np.uint8))
        assert len(encode_gif(flat)) < 200

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            decode_gif(b"NOPE" + bytes(10))

    def test_pixel_count_mismatch(self):
        good = encode_gif(ImageRaster(np.zeros((8, 8, 3), dtype=np.uint8)))
        with pytest.raises(CodecError):
            decode_gif(good[:-1])


class TestJpegLike:
    def test_roundtrip_dimensions(self, photo):
        decoded = decode_jpeg(encode_jpeg(photo, quality=80))
        assert (decoded.width, decoded.height) == (photo.width, photo.height)

    def test_non_multiple_of_8(self):
        img = ImageRaster.synthetic(37, 21, seed=1)
        decoded = decode_jpeg(encode_jpeg(img, quality=90))
        assert (decoded.width, decoded.height) == (37, 21)

    def test_high_quality_low_error(self, photo):
        decoded = decode_jpeg(encode_jpeg(photo, quality=100))
        err = np.abs(decoded.pixels.astype(int) - photo.pixels.astype(int))
        # frequency-weighted quantisation keeps some high-frequency loss
        # even at q100, like real JPEG's quality-100 tables
        assert err.mean() < 5.0

    def test_quality_controls_error(self, photo):
        err = {}
        for q in (20, 60, 100):
            decoded = decode_jpeg(encode_jpeg(photo, quality=q))
            err[q] = np.abs(decoded.pixels.astype(int) - photo.pixels.astype(int)).mean()
        assert err[100] < err[60] < err[20]

    def test_quality_controls_size(self, photo):
        hi = len(encode_jpeg(photo, quality=95))
        lo = len(encode_jpeg(photo, quality=20))
        assert lo < hi

    def test_jpeg_smaller_than_gif_on_photo(self, photo):
        # the economic premise of the Gif2Jpeg streamlet
        assert len(encode_jpeg(photo, quality=60)) < len(encode_gif(photo))

    def test_quality_bounds(self, photo):
        for q in [0, 101, -5]:
            with pytest.raises(CodecError):
                encode_jpeg(photo, quality=q)

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            decode_jpeg(b"JUNK" + bytes(16))

    def test_truncated_channel(self, photo):
        data = encode_jpeg(photo, quality=50)
        with pytest.raises(CodecError):
            decode_jpeg(data[:12])


class TestPixelOps:
    def test_downsample_shape(self, photo):
        small = downsample(photo, 2)
        assert (small.width, small.height) == (48, 32)

    def test_downsample_identity(self, photo):
        assert downsample(photo, 1) == photo

    def test_downsample_reduces_bytes(self, photo):
        assert downsample(photo, 4).size_bytes() == photo.size_bytes() // 16

    def test_downsample_flat_preserves_value(self):
        flat = ImageRaster(np.full((16, 16, 3), 77, dtype=np.uint8))
        assert np.all(downsample(flat, 4).pixels == 77)

    def test_downsample_bad_factor(self, photo):
        with pytest.raises(CodecError):
            downsample(photo, 0)

    def test_downsample_too_small(self):
        tiny = ImageRaster(np.zeros((2, 2, 3), dtype=np.uint8))
        with pytest.raises(CodecError):
            downsample(tiny, 5)

    def test_quantize_grays_levels(self, photo):
        gray = quantize_grays(photo, levels=16)
        # grayscale: all channels equal
        assert np.array_equal(gray.pixels[:, :, 0], gray.pixels[:, :, 1])
        assert len(np.unique(gray.pixels[:, :, 0])) <= 16

    def test_quantize_grays_bad_levels(self, photo):
        for levels in [1, 257]:
            with pytest.raises(CodecError):
                quantize_grays(photo, levels=levels)

    def test_quantize_grays_black_white(self):
        black = ImageRaster(np.zeros((8, 8, 3), dtype=np.uint8))
        white = ImageRaster(np.full((8, 8, 3), 255, dtype=np.uint8))
        assert quantize_grays(black, 16).pixels.max() < 16
        assert quantize_grays(white, 16).pixels.min() > 239
