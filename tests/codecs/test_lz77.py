import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.lz77 import lzss_compress, lzss_decompress
from repro.errors import CodecError


class TestLzss:
    def test_empty(self):
        assert lzss_decompress(lzss_compress(b"")) == b""

    def test_no_match_stream(self):
        data = bytes(range(256))
        assert lzss_decompress(lzss_compress(data)) == data

    def test_repetitive_compresses_well(self):
        data = b"abcabcabc" * 500
        encoded = lzss_compress(data)
        assert len(encoded) < len(data) / 10
        assert lzss_decompress(encoded) == data

    def test_overlapping_match(self):
        # classic LZ self-overlap: run longer than distance
        data = b"a" * 1000
        assert lzss_decompress(lzss_compress(data)) == data

    def test_english_like(self):
        data = (b"the rain in spain stays mainly in the plain. " * 200)
        encoded = lzss_compress(data)
        assert len(encoded) < len(data) / 3
        assert lzss_decompress(encoded) == data

    def test_long_input_beyond_window(self):
        import numpy as np

        rng = np.random.default_rng(7)
        # structured data longer than the 32 KiB window
        chunk = bytes(rng.integers(0, 16, 512, dtype=np.uint8))
        data = chunk * 100  # 51200 bytes
        assert lzss_decompress(lzss_compress(data)) == data

    def test_max_chain_tradeoff(self):
        data = (b"abcdefgh" * 1000)
        small = lzss_compress(data, max_chain=1)
        large = lzss_compress(data, max_chain=64)
        assert lzss_decompress(small) == data
        assert lzss_decompress(large) == data
        assert len(large) <= len(small)

    def test_truncated_raises(self):
        with pytest.raises(CodecError):
            lzss_decompress(b"\x01")

    def test_corrupt_match_distance_raises(self):
        import struct

        from repro.codecs.bits import BitWriter

        w = BitWriter()
        w.write_bit(1)
        w.write_bits(100, 15)  # distance 101 into an empty history
        w.write_bits(0, 8)
        with pytest.raises(CodecError):
            lzss_decompress(struct.pack("<I", 3) + w.getvalue())


@settings(deadline=None)
@given(st.binary(max_size=4096))
def test_roundtrip_random(data):
    assert lzss_decompress(lzss_compress(data)) == data


@settings(deadline=None)
@given(st.text(alphabet="abc", max_size=3000))
def test_roundtrip_compressible(text):
    data = text.encode()
    assert lzss_decompress(lzss_compress(data)) == data
