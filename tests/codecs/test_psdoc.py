import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.psdoc import PsDocument, PsOp
from repro.errors import CodecError


def sample_doc():
    return (
        PsDocument()
        .add("font", "Helvetica 12")
        .add("moveto", "72 720")
        .show("Hello, world")
        .add("line", "10 10 200 10")
        .add("setgray", "0.5")
        .show("Second paragraph")
        .add("page")
    )


class TestPsOp:
    def test_valid(self):
        PsOp("moveto", "1 2")

    def test_unknown_operator(self):
        with pytest.raises(CodecError):
            PsOp("bogus", "1")

    def test_wrong_arity(self):
        with pytest.raises(CodecError):
            PsOp("moveto", "1")

    def test_non_numeric_arg(self):
        with pytest.raises(CodecError):
            PsOp("moveto", "a b")

    def test_page_takes_nothing(self):
        with pytest.raises(CodecError):
            PsOp("page", "1")

    def test_newline_rejected(self):
        with pytest.raises(CodecError):
            PsOp("show", "bad\ntext")

    def test_is_text(self):
        assert PsOp("show", "x").is_text
        assert not PsOp("page").is_text


class TestPsDocument:
    def test_roundtrip(self):
        doc = sample_doc()
        assert PsDocument.parse(doc.to_source()) == doc

    def test_parse_skips_comments_and_blanks(self):
        doc = PsDocument.parse("% comment\n\nshow hi\n")
        assert len(doc) == 1

    def test_parse_error_reports_line(self):
        with pytest.raises(CodecError, match="line 2"):
            PsDocument.parse("page\nmoveto 1\n")

    def test_to_text_extracts_runs(self):
        assert sample_doc().to_text() == "Hello, world\nSecond paragraph"

    def test_show_escapes_newlines(self):
        doc = PsDocument().show("a\nb")
        assert "\n" not in doc.ops[0].args
        assert doc.to_text() == "a\nb"

    def test_show_trims_run_edges(self):
        # wire form is whitespace-delimited: edge whitespace is dropped
        assert PsDocument().show("  padded  ").to_text() == "padded"

    def test_text_fraction(self):
        doc = sample_doc()
        assert 0.0 < doc.text_fraction() < 1.0

    def test_text_fraction_empty(self):
        assert PsDocument().text_fraction() == 0.0

    def test_size_bytes_matches_source(self):
        doc = sample_doc()
        assert doc.size_bytes() == len(doc.to_source().encode())

    def test_clone_independent(self):
        doc = sample_doc()
        copy = doc.clone()
        copy.add("page")
        assert len(doc) == len(copy) - 1

    def test_text_smaller_than_source(self):
        doc = sample_doc()
        assert len(doc.to_text()) < doc.size_bytes()


_RUN_ALPHABET = "abc XYZ019.,!?-_()" + "\n"


@given(st.lists(st.text(alphabet=_RUN_ALPHABET, max_size=40), max_size=10))
def test_show_roundtrip_property(runs):
    doc = PsDocument()
    for run in runs:
        doc.show(run)
    parsed = PsDocument.parse(doc.to_source())
    assert parsed.to_text() == doc.to_text()
    assert parsed == doc
