import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codecs.rle import rle_decode, rle_encode
from repro.errors import CodecError


class TestRle:
    def test_empty(self):
        assert rle_encode(b"") == b""
        assert rle_decode(b"") == b""

    def test_single_byte(self):
        assert rle_decode(rle_encode(b"a")) == b"a"

    def test_long_run_compresses(self):
        data = b"\x00" * 1000
        encoded = rle_encode(data)
        assert len(encoded) < 30
        assert rle_decode(encoded) == data

    def test_alternating_expands_bounded(self):
        data = bytes(range(256)) * 4
        encoded = rle_encode(data)
        assert len(encoded) <= len(data) + len(data) // 128 + 2
        assert rle_decode(encoded) == data

    def test_run_of_two_kept_literal(self):
        assert rle_decode(rle_encode(b"aab")) == b"aab"

    def test_max_run_boundary(self):
        for n in [127, 128, 129, 130, 257, 258, 259]:
            data = b"x" * n
            assert rle_decode(rle_encode(data)) == data

    def test_truncated_literal_raises(self):
        with pytest.raises(CodecError):
            rle_decode(bytes([5, 1, 2]))  # promises 6 literals, has 2

    def test_truncated_repeat_raises(self):
        with pytest.raises(CodecError):
            rle_decode(bytes([0x85]))


@given(st.binary(max_size=2048))
def test_roundtrip(data):
    assert rle_decode(rle_encode(data)) == data


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=1, max_value=5000))
def test_roundtrip_runs(byte, count):
    data = bytes([byte]) * count
    assert rle_decode(rle_encode(data)) == data
