import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.sgml import Element, escape_attr, escape_text, parse
from repro.errors import CodecError


class TestElement:
    def test_construction(self):
        e = Element("doc", {"id": "1"})
        assert e.name == "doc"

    def test_bad_name(self):
        with pytest.raises(CodecError):
            Element("1bad")
        with pytest.raises(CodecError):
            Element("has space")

    def test_bad_attr_name(self):
        with pytest.raises(CodecError):
            Element("a", {"bad name": "x"})

    def test_text_collection(self):
        e = Element("p").add("one ").add(Element("b").add("two")).add(" three")
        assert e.text() == "one two three"

    def test_find(self):
        e = Element("doc").add(Element("head")).add(Element("body"))
        assert e.find("body").name == "body"
        assert e.find("missing") is None

    def test_clone_independent(self):
        e = Element("doc").add(Element("child"))
        copy = e.clone()
        copy.children.append(Element("extra"))
        assert len(e.children) == 1


class TestSerialize:
    def test_empty_element(self):
        assert Element("br").serialize() == "<br/>"

    def test_attrs_and_children(self):
        e = Element("a", {"href": "x"}).add("text")
        assert e.serialize() == '<a href="x">text</a>'

    def test_escaping(self):
        e = Element("p", {"title": 'say "hi" & bye'}).add("1 < 2 & 3 > 2")
        text = e.serialize()
        assert "&lt;" in text and "&amp;" in text and "&quot;" in text
        assert parse(text) == e


class TestParse:
    def test_simple(self):
        doc = parse('<doc id="7"><item>one</item><item>two</item></doc>')
        assert doc.name == "doc"
        assert doc.attrs == {"id": "7"}
        assert [c.text() for c in doc.elements()] == ["one", "two"]

    def test_self_closing(self):
        doc = parse("<doc><hr/><hr/></doc>")
        assert len(doc.elements()) == 2

    def test_mixed_content(self):
        doc = parse("<p>start <b>bold</b> end</p>")
        assert doc.children[0] == "start "
        assert doc.children[2] == " end"

    def test_entities(self):
        doc = parse("<p>&lt;tag&gt; &amp; &quot;quote&quot; &apos;</p>")
        assert doc.text() == "<tag> & \"quote\" '"

    def test_whitespace_around_root(self):
        assert parse("  <doc/>  ").name == "doc"

    @pytest.mark.parametrize("bad", [
        "",                       # nothing
        "plain text",             # no element
        "<doc>",                  # unclosed
        "<doc></other>",          # mismatched
        "<doc/><doc/>",           # two roots
        "<doc attr=unquoted/>",   # unquoted attribute
        "<doc attr='single'/>",   # single quotes not in the dialect
        '<doc a="1" a="2"/>',     # duplicate attribute
        "<doc>&unknown;</doc>",   # unknown entity
        "<doc>&amp</doc>",        # unterminated entity
        "<1bad/>",                # illegal name
        '<doc a="<"/>',           # '<' in attribute value
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(CodecError):
            parse(bad)

    def test_non_string_rejected(self):
        with pytest.raises(CodecError):
            parse(b"<doc/>")  # type: ignore[arg-type]

    def test_deep_nesting(self):
        source = "<a>" * 50 + "</a>" * 50
        # fix: that's invalid (children mismatch); build properly
        doc = Element("n0")
        cur = doc
        for i in range(1, 50):
            nxt = Element(f"n{i}")
            cur.add(nxt)
            cur = nxt
        assert parse(doc.serialize()) == doc


# -- property: serialize/parse round-trip over generated trees ---------------------

_names = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)
_texts = st.text(
    alphabet="abc <>&\"' é中", min_size=1, max_size=20
)


def _element(children):
    return st.builds(
        Element,
        name=_names,
        attrs=st.dictionaries(_names, _texts, max_size=3),
        children=st.lists(st.one_of(_texts, children), max_size=4),
    )


_tree = st.recursive(_element(st.nothing()), _element, max_leaves=20)


def _normalize(element: Element) -> Element:
    """Canonical form: adjacent text children merged (as parsing does)."""
    merged: list[Element | str] = []
    for child in element.children:
        if isinstance(child, str) and merged and isinstance(merged[-1], str):
            merged[-1] = merged[-1] + child
        elif isinstance(child, str):
            merged.append(child)
        else:
            merged.append(_normalize(child))
    return Element(element.name, dict(element.attrs), merged)


@settings(deadline=None, max_examples=150)
@given(_tree)
def test_roundtrip_property(tree):
    assert parse(tree.serialize()) == _normalize(tree)
