import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.textcodec import TextCodec
from repro.errors import CodecError


@pytest.fixture
def codec():
    return TextCodec()


class TestTextCodec:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""

    def test_roundtrip_simple(self, codec):
        data = b"hello world " * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_english_hits_paper_ratio(self, codec):
        # The thesis claims the Text Compressor reduces size by up to 75%.
        text = (
            b"MobiGATE is a mobile middleware architecture that supports the "
            b"robust and flexible composition of transport entities, known as "
            b"streamlets. The flow of data traffic is subjected to processing "
            b"by a chain of streamlets across the wireless network. "
        ) * 50
        assert codec.ratio(text) < 0.35

    def test_incompressible_bounded_overhead(self, codec):
        import numpy as np

        data = bytes(np.random.default_rng(1).integers(0, 256, 4096, dtype=np.uint8))
        compressed = codec.compress(data)
        assert len(compressed) <= len(data) + 5  # stored mode: magic + mode byte

    def test_bad_magic_raises(self, codec):
        with pytest.raises(CodecError):
            codec.decompress(b"XXXX\x00data")

    def test_unknown_mode_raises(self, codec):
        with pytest.raises(CodecError):
            codec.decompress(b"MGTC\x07body")

    def test_short_input_raises(self, codec):
        with pytest.raises(CodecError):
            codec.decompress(b"MG")

    def test_non_bytes_rejected(self, codec):
        with pytest.raises(CodecError):
            codec.compress("a string")  # type: ignore[arg-type]

    def test_bytearray_accepted(self, codec):
        data = bytearray(b"abc" * 100)
        assert codec.decompress(codec.compress(data)) == bytes(data)

    def test_bad_max_chain(self):
        with pytest.raises(CodecError):
            TextCodec(max_chain=0)

    def test_ratio_empty_is_one(self, codec):
        assert codec.ratio(b"") == 1.0


@settings(deadline=None, max_examples=50)
@given(st.binary(max_size=3000))
def test_roundtrip_property(data):
    codec = TextCodec()
    assert codec.decompress(codec.compress(data)) == data
