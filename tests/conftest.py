"""Shared fixtures for the whole suite."""

import pytest


@pytest.fixture(autouse=True)
def _flight_dump_dir(tmp_path, monkeypatch):
    """Route flight-recorder dumps into the test's tmp dir.

    Supervisor escalations and conservation failures auto-dump
    ``FLIGHT_<stream>.json``; without this redirect every fault test
    would litter the working directory.
    """
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
