"""The conservation invariant under injected schedules, both engines.

The acceptance property of the fault plane: after any schedule —
streamlet faults, channel stalls, link outages, handoff storms, worker
kills — every admitted pool id is exactly one of delivered /
dead-lettered / counted in a drop statistic, and for a fixed seed a
virtual-time run replays bit-identically.
"""

import dataclasses
import time

from repro.apps import build_server
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RecoveryPolicy,
    Supervisor,
    assert_conservation,
    check_conservation,
)
from repro.mime.message import MimeMessage
from repro.netsim.handoff import HandoffManager
from repro.netsim.link import WirelessLink
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
channel mid{
  port{ in cin : text/*; out cout : text/*; }
  attribute{ buffer = 256; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  channel m = new-channel (mid);
  connect (a.po, b.pi, m);
  connect (b.po, c.pi);
}
"""


def deploy():
    clock = VirtualClock()
    server = build_server(clock=clock)
    stream = server.deploy_script(SOURCE)
    return server, stream, clock


def full_schedule(server, clock, *, seed):
    """Streamlet faults + channel stall + link outage + handoff storm."""
    plan = FaultPlan(seed=seed)
    plan.fail_streamlet("b", mode="probability", probability=0.4)
    plan.stall_channel("m", at=0.5, duration=1.0)
    plan.link_outage(at=1.0, duration=0.5)
    plan.handoff_storm(("gsm", "wavelan"), at=2.0, rounds=2)
    link = WirelessLink(1_000_000.0, clock=clock, seed=seed)
    handoff = HandoffManager(server.events)
    handoff.add_link("wavelan", link)
    handoff.add_link("gsm", WirelessLink(20_000.0, clock=clock, seed=seed + 1))
    return plan, link, handoff


def run_injected(seed=11, messages=20):
    """One full virtual-time run; returns (stream, supervisor, bodies)."""
    server, stream, clock = deploy()
    plan, link, handoff = full_schedule(server, clock, seed=seed)
    injector = FaultInjector(plan, clock=clock, link=link, handoff=handoff)
    injector.arm(stream)
    supervisor = Supervisor(
        stream,
        RecoveryPolicy(max_retries=3, backoff_base=0.05, jitter=0.01),
        seed=seed,
    )
    supervisor.attach()
    scheduler = InlineScheduler(stream)
    bodies = []
    for i in range(messages):
        stream.post(MimeMessage("text/plain", f"m{i}".encode()))
    for _ in range(80):  # march virtual time across the whole schedule
        scheduler.pump()
        clock.advance(0.1)
        injector.tick()
        supervisor.pump_retries()
        # every outage window sees one offered transmission
        link.transmit(200)
    supervisor.settle(scheduler)
    bodies = [m.body for m in stream.collect()]
    return stream, supervisor, bodies


class TestInlineConservation:
    def test_invariant_holds_under_full_schedule(self):
        stream, supervisor, bodies = run_injected()
        report = assert_conservation(stream, zero_loss=True)
        # BK chain + recovery: nothing vanishes — every message is either
        # delivered or inspectable in the dead-letter pool
        assert report.delivered + report.dead_letters == 20
        assert report.residual == 0
        assert len(bodies) == report.delivered
        assert len(supervisor.dead_letters) == report.dead_letters

    def test_fixed_seed_replays_bit_identically(self):
        runs = []
        for _ in range(2):
            stream, supervisor, bodies = run_injected(seed=11)
            runs.append((
                bodies,
                dataclasses.astuple(stream.stats),
                supervisor.dead_letters.ids(),
                dataclasses.astuple(check_conservation(stream)),
            ))
        assert runs[0] == runs[1]

    def test_conservation_holds_for_every_seed(self):
        # different seeds make different fault decisions; the guarantee
        # (nothing vanishes) is seed-independent
        for seed in (12, 13, 14):
            stream, _, bodies = run_injected(seed=seed)
            report = assert_conservation(stream, zero_loss=True)
            assert report.delivered == len(bodies)
            assert report.delivered + report.dead_letters == 20

    def test_end_sweeps_residual_into_end_drops(self):
        _server, stream, _clock = deploy()
        plan = FaultPlan()
        plan.stall_channel("m", at=0.0)
        FaultInjector(plan).arm(stream)
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"stranded"))
        scheduler.pump()
        assert len(stream.pool) == 1  # parked in the stalled channel
        stream.end()
        report = assert_conservation(stream)
        assert report.end_drops == 1
        assert report.residual == 0


class TestThreadedConservation:
    def test_invariant_holds_with_faults_and_worker_kill(self):
        clock = VirtualClock()
        server = build_server(clock=clock, drop_timeout=0.2)
        stream = server.deploy_script(SOURCE)
        plan = FaultPlan(seed=5)
        plan.fail_streamlet("b", mode="probability", probability=0.3)
        plan.kill_worker("b", at=0.0)  # killed at arm, respawned below
        scheduler = ThreadedScheduler(stream, poll_interval=0.0005)
        scheduler.start()
        supervisor = Supervisor(
            stream, RecoveryPolicy(max_retries=3, backoff_base=0.0, jitter=0.0)
        )
        supervisor.attach()
        injector = FaultInjector(plan, clock=clock, scheduler=scheduler)
        injector.arm(stream)
        assert scheduler.workers_killed == 1
        try:
            for i in range(30):
                stream.post(MimeMessage("text/plain", f"t{i}".encode()))
            scheduler.ensure_workers()  # respawn the killed worker
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                supervisor.pump_retries()
                if scheduler.drain(timeout=0.2) and not supervisor.pending_retries:
                    break
            delivered = stream.collect()
        finally:
            scheduler.stop()
        report = assert_conservation(stream, zero_loss=True)
        assert report.delivered == len(delivered)
        assert report.delivered + report.dead_letters == 30
        assert report.residual == 0
