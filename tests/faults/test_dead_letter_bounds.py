"""Bounded DeadLetterPool: oldest-first eviction with full accounting."""

import pytest

from repro.apps import build_server
from repro.errors import FaultPlanError
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy, Supervisor
from repro.faults.supervisor import DeadLetter, DeadLetterPool
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler
from repro.store import Ledger, MemoryStore
from repro.telemetry import MetricsRegistry, Telemetry
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  connect (a.po, b.pi);
  connect (b.po, c.pi);
}
"""


def entry(msg_id):
    return DeadLetter(
        msg_id=msg_id, message=MimeMessage("text/plain", msg_id.encode()),
        instance="b", port="pi", attempts=1, reason="test",
    )


class TestPoolBounds:
    def test_capacity_evicts_oldest_first(self):
        victims = []
        pool = DeadLetterPool(2, on_evict=lambda v: victims.append(v.msg_id))
        for msg_id in ("m1", "m2", "m3", "m4"):
            pool.add(entry(msg_id))
        assert pool.ids() == ["m3", "m4"]
        assert victims == ["m1", "m2"]
        assert pool.evicted == 2

    def test_unbounded_pool_never_evicts(self):
        pool = DeadLetterPool()
        for i in range(100):
            pool.add(entry(f"m{i}"))
        assert len(pool) == 100 and pool.evicted == 0

    def test_capacity_below_one_rejected(self):
        with pytest.raises(FaultPlanError):
            DeadLetterPool(0)

    def test_rekeying_an_existing_id_is_not_an_eviction(self):
        pool = DeadLetterPool(2)
        pool.add(entry("m1"))
        pool.add(entry("m2"))
        pool.add(entry("m1"))  # replaces in place
        assert pool.evicted == 0 and len(pool) == 2


class TestSupervisedEviction:
    def _exhaust(self, n_messages, capacity):
        clock = VirtualClock()
        telemetry = Telemetry(registry=MetricsRegistry())
        server = build_server(clock=clock, telemetry=telemetry)
        stream = server.deploy_script(SOURCE)
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        FaultInjector(plan).arm(stream)
        ledger = Ledger(MemoryStore())
        supervisor = Supervisor(
            stream,
            RecoveryPolicy(max_retries=0),
            telemetry=telemetry,
            ledger=ledger,
            scope="scope-1",
            dead_letter_capacity=capacity,
        )
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        for i in range(n_messages):
            stream.post(MimeMessage("text/plain", f"m{i}".encode()))
            scheduler.pump()
        return stream, supervisor, ledger, telemetry

    def test_eviction_reaches_counter_ledger_and_pool(self):
        stream, supervisor, ledger, telemetry = self._exhaust(5, capacity=2)
        assert len(supervisor.dead_letters) == 2
        assert supervisor.dead_letters.evicted == 3
        assert telemetry.dead_letters_evicted_counter(stream.name).value == 3
        # the folded ledger agrees: 5 parked, 3 evicted, 2 remain
        sf = ledger.fold().session("scope-1")
        assert sf.dead_lettered == 0  # counters flow through the gateway mirror
        assert set(sf.parked) == set(supervisor.dead_letters.ids())

    def test_eviction_is_recorded_on_the_flight_ring(self):
        stream, supervisor, ledger, _telemetry = self._exhaust(3, capacity=1)
        events = [
            e for e in stream.tm.recorder.events()
            if e["category"] == "dead_letter_evicted"
        ]
        assert len(events) == 2
        evicted_ids = {e["msg_id"] for e in events}
        # the ledger saw the same evictions: parked minus evicted remains
        sf = ledger.fold().session("scope-1")
        assert evicted_ids.isdisjoint(sf.parked)
        assert len(sf.parked) == 1
