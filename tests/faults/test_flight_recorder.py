"""The flight recorder under fire: scripted faults leave an ordered dump.

The acceptance scenario: inject a persistent streamlet fault, let the
Supervisor exhaust its retries, and verify the auto-dumped
``FLIGHT_<stream>.json`` tells the whole story — injected fault, the
dead-letter, and the escalation — in sequence order.
"""

import json

import pytest

from repro.apps import build_server
from repro.errors import ConservationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RecoveryPolicy,
    Supervisor,
    assert_conservation,
)
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler
from repro.telemetry import MetricsRegistry, Telemetry
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  connect (a.po, b.pi);
  connect (b.po, c.pi);
}
"""


def observed_deploy():
    clock = VirtualClock()
    server = build_server(
        clock=clock, telemetry=Telemetry(registry=MetricsRegistry())
    )
    stream = server.deploy_script(SOURCE)
    return server, stream, clock


def seq_of(events, category):
    """First sequence number of the given category (fails if absent)."""
    for event in events:
        if event["category"] == category:
            return event["seq"]
    raise AssertionError(f"no {category!r} event in dump: "
                         f"{[e['category'] for e in events]}")


class TestEscalationDump:
    def test_scripted_fault_run_dumps_ordered_story(self, tmp_path):
        """fault_injected < dead_letter < supervisor_escalation, by seq."""
        server, stream, _clock = observed_deploy()
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        FaultInjector(plan).arm(stream)
        supervisor = Supervisor(
            stream,
            RecoveryPolicy(max_retries=2, backoff_base=0.1, jitter=0.0),
            events=server.events,
        )
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"doomed"))
        scheduler.pump()
        supervisor.settle(scheduler)
        assert len(supervisor.dead_letters) == 1

        # the conftest fixture points REPRO_FLIGHT_DIR at tmp_path
        dump_path = tmp_path / "FLIGHT_s.json"
        assert dump_path.exists(), list(tmp_path.iterdir())
        data = json.loads(dump_path.read_text())
        assert "RETRY_EXHAUSTED" in data["reason"]
        events = data["events"]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert (
            seq_of(events, "fault_injected")
            < seq_of(events, "dead_letter")
            < seq_of(events, "supervisor_escalation")
        )
        # every retry the supervisor scheduled is on the record too
        retries = [e for e in events if e["category"] == "retry_scheduled"]
        assert len(retries) == 2
        assert all(e["instance"] == "b" for e in retries)
        # path is registered for the introspection plane
        assert stream.tm.recorder.dumps["s"] == str(dump_path)

    def test_unobserved_run_dumps_nothing(self, tmp_path):
        from repro.telemetry import NULL_TELEMETRY

        clock = VirtualClock()
        server = build_server(clock=clock, telemetry=NULL_TELEMETRY)
        stream = server.deploy_script(SOURCE)
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        FaultInjector(plan).arm(stream)
        supervisor = Supervisor(
            stream, RecoveryPolicy(max_retries=1, jitter=0.0), events=server.events
        )
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"doomed"))
        scheduler.pump()
        supervisor.settle(scheduler)
        assert len(supervisor.dead_letters) == 1
        assert list(tmp_path.iterdir()) == []


class TestConservationDump:
    def test_violation_dumps_and_names_the_artifact(self, tmp_path):
        _server, stream, _clock = observed_deploy()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"ok"))
        scheduler.pump()
        stream.collect()
        # sabotage the ledger: an id counted twice is an imbalance
        stream.stats.inc("messages_out")
        with pytest.raises(ConservationError) as err:
            assert_conservation(stream)
        assert "[flight recorder: " in str(err.value)
        dump_path = tmp_path / "FLIGHT_s.json"
        assert str(dump_path) in str(err.value)
        data = json.loads(dump_path.read_text())
        last = data["events"][-1]
        assert last["category"] == "conservation_violation"
        assert "conservation violated" in last["reason"]
