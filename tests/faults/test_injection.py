"""FaultInjector: landing plans on live streams, links, and schedulers."""

import time

import pytest

from repro.apps import build_server
from repro.errors import FaultPlanError
from repro.faults import FaultInjector, FaultPlan
from repro.mime.message import MimeMessage
from repro.netsim.handoff import HandoffManager
from repro.netsim.link import WirelessLink
from repro.runtime.events import EventManager
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
channel mid{
  port{ in cin : text/*; out cout : text/*; }
  attribute{ buffer = 64; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  channel m = new-channel (mid);
  connect (a.po, b.pi, m);
  connect (b.po, c.pi);
}
"""


@pytest.fixture
def deployed():
    clock = VirtualClock()
    server = build_server(clock=clock)
    stream = server.deploy_script(SOURCE)
    return server, stream, clock


class TestStreamletFaults:
    def test_once_fault_drops_one_message(self, deployed):
        _server, stream, _clock = deployed
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="once")
        injector = FaultInjector(plan)
        injector.arm(stream)
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"first"))
        stream.post(MimeMessage("text/plain", b"second"))
        scheduler.pump()
        delivered = stream.collect()
        assert [m.body for m in delivered] == [b"second"]
        assert stream.stats.processing_failures == 1
        assert stream.stats.failure_drops == 1  # no supervisor attached
        assert len(stream.pool) == 0

    def test_disarm_restores_process(self, deployed):
        _server, stream, _clock = deployed
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        injector = FaultInjector(plan)
        injector.arm(stream)
        streamlet = stream.node("b").streamlet
        assert "process" in streamlet.__dict__
        injector.disarm()
        assert "process" not in streamlet.__dict__
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"after"))
        scheduler.pump()
        assert len(stream.collect()) == 1

    def test_unknown_instance_rejected(self, deployed):
        _server, stream, _clock = deployed
        plan = FaultPlan()
        plan.fail_streamlet("nope")
        with pytest.raises(FaultPlanError):
            FaultInjector(plan).arm(stream)

    def test_double_arm_rejected(self, deployed):
        _server, stream, _clock = deployed
        injector = FaultInjector(FaultPlan())
        injector.arm(stream)
        with pytest.raises(FaultPlanError):
            injector.arm(stream)


class TestChannelFaults:
    def test_stall_parks_messages_until_released(self, deployed):
        _server, stream, _clock = deployed
        plan = FaultPlan()
        plan.stall_channel("m", at=0.0)
        injector = FaultInjector(plan)
        injector.arm(stream)  # at=0 applies at arm time (virtual now == 0)
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"parked"))
        scheduler.pump()
        assert stream.collect() == []
        assert stream.channel("m").pending() == 1
        assert injector.release_stall("m")
        scheduler.pump()
        assert len(stream.collect()) == 1

    def test_stall_heals_after_duration(self, deployed):
        _server, stream, clock = deployed
        plan = FaultPlan()
        plan.stall_channel("m", at=0.0, duration=1.0)
        injector = FaultInjector(plan)
        injector.arm(stream)
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"held"))
        scheduler.pump()
        assert stream.collect() == []
        clock.advance(2.0)
        injector.tick()
        scheduler.pump()
        assert len(stream.collect()) == 1

    def test_close_turns_posts_into_counted_drops(self, deployed):
        _server, stream, _clock = deployed
        plan = FaultPlan()
        plan.close_channel("m", at=0.0)
        injector = FaultInjector(plan)
        injector.arm(stream)
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"doomed"))
        scheduler.pump()  # must not crash the pump
        assert stream.collect() == []
        assert stream.stats.queue_drops == 1
        assert len(stream.pool) == 0  # the dropped id was released

    def test_unknown_channel_rejected(self, deployed):
        _server, stream, _clock = deployed
        plan = FaultPlan()
        plan.stall_channel("nope", at=0.0)
        with pytest.raises(FaultPlanError):
            FaultInjector(plan).arm(stream)


class TestLinkAndHandoffFaults:
    def test_outage_and_collapse_schedule(self):
        clock = VirtualClock()
        link = WirelessLink(1_000_000.0, clock=clock, seed=1)
        plan = FaultPlan()
        plan.link_outage(at=1.0, duration=2.0)
        plan.link_collapse(at=5.0, duration=1.0, bandwidth_bps=2_000.0)
        injector = FaultInjector(plan, clock=clock, link=link)
        assert injector.tick() == 0  # nothing due yet
        assert injector.next_due() == 1.0

        clock.advance_to(1.0)
        injector.tick()
        assert link.in_outage
        assert link.transmit(100).lost
        assert link.outage_losses == 1

        clock.advance_to(3.5)
        assert not link.in_outage

        clock.advance_to(5.0)
        injector.tick()
        assert link.bandwidth_bps == 2_000.0
        clock.advance_to(6.5)
        injector.tick()
        assert link.bandwidth_bps == 1_000_000.0
        assert injector.next_due() is None

    def test_link_fault_without_link_rejected(self):
        plan = FaultPlan()
        plan.link_outage(at=0.0)
        injector = FaultInjector(plan, clock=VirtualClock())
        with pytest.raises(FaultPlanError):
            injector.tick()

    def test_handoff_storm_alternates_interfaces(self):
        clock = VirtualClock()
        events = EventManager()
        handoff = HandoffManager(events)
        handoff.add_link("wavelan", WirelessLink(1_000_000.0, clock=clock))
        handoff.add_link("gsm", WirelessLink(20_000.0, clock=clock))
        plan = FaultPlan()
        plan.handoff_storm(("gsm", "wavelan"), at=0.0, rounds=2)
        injector = FaultInjector(plan, clock=clock, handoff=handoff)
        injector.tick()
        assert len(handoff.handoffs) == 4  # two rounds over two interfaces
        assert handoff.active_name == "wavelan"


class TestWorkerKills:
    def test_kill_then_respawn_restores_flow(self, deployed):
        _server, stream, clock = deployed
        scheduler = ThreadedScheduler(stream, poll_interval=0.0005)
        scheduler.start()
        try:
            plan = FaultPlan()
            plan.kill_worker("b", at=0.0, respawn_after=1.0)
            injector = FaultInjector(plan, clock=clock, scheduler=scheduler)
            injector.arm(stream)  # kill fires at arm (virtual now == 0)
            assert scheduler.workers_killed == 1
            stream.post(MimeMessage("text/plain", b"stuck"))
            time.sleep(0.05)  # a and the dead b: message parks at b
            assert stream.collect() == []
            clock.advance(1.0)
            injector.tick()  # respawns b via ensure_workers
            assert scheduler.drain(timeout=10)
            assert len(stream.collect()) == 1
        finally:
            scheduler.stop()

    def test_kill_without_scheduler_rejected(self, deployed):
        _server, stream, _clock = deployed
        plan = FaultPlan()
        plan.kill_worker("b", at=0.0)
        with pytest.raises(FaultPlanError):
            FaultInjector(plan).arm(stream)
