"""FaultPlan: validation, firing modes, and seeded determinism."""

import random

import pytest

from repro.errors import FaultPlanError
from repro.faults import FaultPlan, InjectedFault, StreamletFault


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultPlanError):
            StreamletFault("tc", mode="sometimes")

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError):
            StreamletFault("tc", mode="probability", probability=0.0)
        with pytest.raises(FaultPlanError):
            StreamletFault("tc", mode="probability", probability=1.5)

    def test_bad_channel_action(self):
        plan = FaultPlan()
        with pytest.raises(FaultPlanError):
            plan.stall_channel("c1", duration=-1.0)

    def test_storm_needs_two_interfaces(self):
        with pytest.raises(FaultPlanError):
            FaultPlan().handoff_storm(("only",))

    def test_outage_needs_positive_duration(self):
        with pytest.raises(FaultPlanError):
            FaultPlan().link_outage(duration=0.0)


class TestFiring:
    def test_once_fires_exactly_times(self):
        fault = StreamletFault("tc", mode="once", times=2)
        rng = random.Random(0)
        assert [fault.should_fire(rng) for _ in range(4)] == [True, True, False, False]

    def test_always_always_fires(self):
        fault = StreamletFault("tc", mode="always")
        rng = random.Random(0)
        assert all(fault.should_fire(rng) for _ in range(5))

    def test_probability_is_seed_deterministic(self):
        decisions = []
        for _ in range(2):
            plan = FaultPlan(seed=42)
            fault = plan.fail_streamlet("tc", mode="probability", probability=0.3)
            decisions.append([fault.should_fire(plan.rng) for _ in range(50)])
        assert decisions[0] == decisions[1]
        assert any(decisions[0])  # p=0.3 over 50 draws fires at least once

    def test_exception_carries_instance(self):
        fault = StreamletFault("g2j")
        exc = fault.make_exception()
        assert isinstance(exc, InjectedFault)
        assert "g2j" in str(exc)


class TestReset:
    def test_reset_rewinds_everything(self):
        plan = FaultPlan(seed=7)
        sf = plan.fail_streamlet("tc", mode="probability", probability=0.5)
        cf = plan.stall_channel("c1", at=1.0)
        first = [sf.should_fire(plan.rng) for _ in range(10)]
        cf.applied = True
        plan.reset()
        assert cf.applied is False
        assert sf.fired == 0
        assert [sf.should_fire(plan.rng) for _ in range(10)] == first

    def test_faults_for_filters_by_instance(self):
        plan = FaultPlan()
        a = plan.fail_streamlet("a")
        plan.fail_streamlet("b")
        assert plan.faults_for("a") == [a]
