"""Supervisor: retry with backoff, dead-letters, bypass, escalation."""

import random

import pytest

from repro.apps import build_server
from repro.errors import FaultPlanError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RecoveryPolicy,
    Supervisor,
    assert_conservation,
)
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  connect (a.po, b.pi);
  connect (b.po, c.pi);
}
"""

#: same chain, but the stream reacts to retry exhaustion by spawning a
#: (dormant) spare — proof the escalation reaches scripted handlers
ESCALATION_SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  connect (a.po, b.pi);
  connect (b.po, c.pi);
  when (RETRY_EXHAUSTED){
    streamlet spare = new-streamlet (tap);
  }
}
"""


def deploy(source=SOURCE):
    clock = VirtualClock()
    server = build_server(clock=clock)
    stream = server.deploy_script(source)
    return server, stream, clock


def fast_policy(**overrides):
    defaults = dict(max_retries=3, backoff_base=0.1, backoff_factor=2.0, jitter=0.0)
    defaults.update(overrides)
    return RecoveryPolicy(**defaults)


class TestRetry:
    def test_transient_fault_is_retried_to_delivery(self):
        _server, stream, _clock = deploy()
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="once")
        FaultInjector(plan).arm(stream)
        supervisor = Supervisor(stream, fast_policy())
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"payload"))
        scheduler.pump()
        # the failed id was retained, not released
        assert stream.stats.failure_drops == 0
        assert supervisor.pending_retries == 1
        supervisor.settle(scheduler)
        delivered = stream.collect()
        assert [m.body for m in delivered] == [b"payload"]
        assert stream.stats.retries == 1
        assert_conservation(stream, zero_loss=True)

    def test_backoff_grows_exponentially(self):
        policy = fast_policy(backoff_base=0.1, backoff_factor=2.0)
        rng = random.Random(0)
        delays = [policy.delay_for(n, rng) for n in range(3)]
        assert delays == [0.1, 0.2, 0.4]

    def test_jitter_is_seed_deterministic(self):
        policy = fast_policy(jitter=0.05)
        a = [policy.delay_for(n, random.Random(9)) for n in range(5)]
        b = [policy.delay_for(n, random.Random(9)) for n in range(5)]
        assert a == b
        assert any(x != policy.delay_for(i, random.Random(10)) for i, x in enumerate(a))


class TestDeadLetters:
    def test_exhausted_message_is_dead_lettered(self):
        _server, stream, _clock = deploy()
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        FaultInjector(plan).arm(stream)
        supervisor = Supervisor(stream, fast_policy(max_retries=2))
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"cursed"))
        scheduler.pump()
        supervisor.settle(scheduler)
        assert stream.collect() == []
        assert len(supervisor.dead_letters) == 1
        entry = next(iter(supervisor.dead_letters))
        assert entry.instance == "b"
        assert entry.attempts == 2
        assert "exhausted" in entry.reason
        assert stream.stats.retries == 2
        assert stream.stats.dead_letters == 1
        assert len(stream.pool) == 0
        report = assert_conservation(stream)
        assert report.dead_letters == 1

    def test_dead_letter_reinjection_after_heal(self):
        _server, stream, _clock = deploy()
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        injector = FaultInjector(plan)
        injector.arm(stream)
        supervisor = Supervisor(stream, fast_policy(max_retries=1))
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"again"))
        scheduler.pump()
        supervisor.settle(scheduler)
        [msg_id] = supervisor.dead_letters.ids()
        entry = supervisor.dead_letters.take(msg_id)
        injector.disarm()  # the fault heals...
        stream.post(entry.message)  # ...and the parked message re-enters
        scheduler.pump()
        assert [m.body for m in stream.collect()] == [b"again"]

    def test_exhaustion_escalates_to_scripted_handler(self):
        server, stream, _clock = deploy(ESCALATION_SOURCE)
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        FaultInjector(plan).arm(stream)
        supervisor = Supervisor(
            stream, fast_policy(max_retries=1), events=server.events
        )
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"boom"))
        scheduler.pump()
        supervisor.settle(scheduler)
        # the RETRY_EXHAUSTED `when` handler ran and created the spare
        assert "spare" in stream.instance_names()
        assert stream.stats.events_handled == 1


class TestBypass:
    def test_optional_streamlet_is_bypassed(self):
        server, stream, _clock = deploy()
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        FaultInjector(plan).arm(stream)
        supervisor = Supervisor(
            stream,
            fast_policy(max_retries=5, bypass_threshold=2),
            optional=("b",),
            events=server.events,
        )
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        for i in range(3):
            stream.post(MimeMessage("text/plain", f"m{i}".encode()))
        scheduler.pump()
        supervisor.settle(scheduler)
        assert supervisor.bypassed == ["b"]
        # b is out of the chain: a feeds c directly and traffic flows again
        stream.post(MimeMessage("text/plain", b"after-bypass"))
        scheduler.pump()
        bodies = [m.body for m in stream.collect()]
        assert b"after-bypass" in bodies
        assert_conservation(stream)
        assert len(stream.pool) == 0

    def test_mandatory_streamlet_is_never_bypassed(self):
        _server, stream, _clock = deploy()
        plan = FaultPlan()
        plan.fail_streamlet("b", mode="always")
        FaultInjector(plan).arm(stream)
        supervisor = Supervisor(
            stream, fast_policy(max_retries=1, bypass_threshold=1)
        )  # b not in optional
        supervisor.attach()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"kept"))
        scheduler.pump()
        supervisor.settle(scheduler)
        assert supervisor.bypassed == []
        assert "b" in stream.instance_names()
        assert len(supervisor.dead_letters) == 1


class TestWiring:
    def test_double_attach_rejected(self):
        _server, stream, _clock = deploy()
        supervisor = Supervisor(stream)
        supervisor.attach()
        with pytest.raises(FaultPlanError):
            supervisor.attach()

    def test_attach_rejected_when_handler_taken(self):
        _server, stream, _clock = deploy()
        stream.fault_handler = lambda *a: False
        with pytest.raises(FaultPlanError):
            Supervisor(stream).attach()

    def test_detach_restores_hooks(self):
        _server, stream, _clock = deploy()
        supervisor = Supervisor(stream)
        supervisor.attach()
        supervisor.detach()
        assert stream.fault_handler is None
        assert stream.drop_hook is None
        supervisor.attach()  # re-attachable after a clean detach

    def test_policy_validation(self):
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(bypass_threshold=0)

    def test_drop_hook_records_drops(self):
        _server, stream, _clock = deploy()
        supervisor = Supervisor(stream)
        supervisor.attach()
        msg = MimeMessage("text/plain", b"x")
        key = next(iter(stream.ingress))
        stream.ingress[key].post = lambda *a, **k: False  # force an ingress drop
        msg_id = stream.post(msg)
        assert supervisor.drops_seen == [msg_id]
        assert stream.stats.queue_drops == 1
