"""The management API: deploy, reconfigure, stats, telemetry, error paths."""

import json
import socket

from repro.gateway import GatewayServer, control_request
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message

MCL = """main stream chain{
  streamlet r0, r1 = new-streamlet (redirector);
  connect (r0.po, r1.pi);
}"""

RECONFIGURABLE_MCL = """main stream adaptive{
  streamlet a, b = new-streamlet (redirector);
  connect (a.po, b.pi);
  when (LOW_BANDWIDTH) {
    streamlet f = new-streamlet (redirector);
    insert (a.po, b.pi, f);
  }
}"""


def echo_once(address, key, body):
    message = MimeMessage("text/plain", body)
    message.headers.session = key
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(serialize_message(message))
        assembler = FrameAssembler()
        frames = []
        while not frames:
            chunk = sock.recv(65536)
            assert chunk, "gateway closed the connection"
            frames = assembler.feed(chunk)
    return frames[0]


class TestVerbs:
    def test_health_reports_both_planes(self):
        with GatewayServer().run_in_thread() as handle:
            health = handle.control({"op": "health"})
            assert health["ok"]
            assert health["sessions"] == 0
            assert tuple(health["data_address"]) == handle.data_address

    def test_deploy_sessions_stats_undeploy_cycle(self):
        with GatewayServer().run_in_thread() as handle:
            deployed = handle.control({"op": "deploy", "mcl": MCL})
            assert deployed["ok"]
            key = deployed["session"]

            listing = handle.control({"op": "sessions"})
            assert [s["session"] for s in listing["sessions"]] == [key]
            assert listing["sessions"][0]["scheduler"] == "threaded"

            stats = handle.control({"op": "stats", "session": key})
            assert stats["ok"]
            assert stats["conservation"]["balanced"]
            assert "stream_stats" in stats

            removed = handle.control({"op": "undeploy", "session": key})
            assert removed["ok"]
            assert handle.control({"op": "sessions"})["sessions"] == []
            again = handle.control({"op": "undeploy", "session": key})
            assert not again["ok"]

    def test_deploy_inline_scheduler(self):
        with GatewayServer().run_in_thread() as handle:
            deployed = handle.control(
                {"op": "deploy", "mcl": MCL, "scheduler": "inline"}
            )
            assert deployed["ok"]
            listing = handle.control({"op": "sessions"})
            assert listing["sessions"][0]["scheduler"] == "inline"

    def test_explicit_session_key_and_duplicate_rejection(self):
        with GatewayServer().run_in_thread() as handle:
            first = handle.control({"op": "deploy", "mcl": MCL, "session": "alpha"})
            assert first["ok"] and first["session"] == "alpha"
            duplicate = handle.control({"op": "deploy", "mcl": MCL, "session": "alpha"})
            assert not duplicate["ok"]
            assert "alpha" in duplicate["error"]

    def test_same_script_deploys_many_sessions(self):
        with GatewayServer().run_in_thread() as handle:
            keys = {handle.control({"op": "deploy", "mcl": MCL})["session"] for _ in range(3)}
            assert len(keys) == 3

    def test_reconfigure_drives_an_epoch_commit(self):
        with GatewayServer().run_in_thread() as handle:
            deployed = handle.control({"op": "deploy", "mcl": RECONFIGURABLE_MCL})
            assert deployed["ok"] and deployed["epoch"] == 0
            key = deployed["session"]
            assert echo_once(handle.data_address, key, b"before").body == b"before"

            adapted = handle.control(
                {"op": "reconfigure", "event": "LOW_BANDWIDTH", "session": key}
            )
            assert adapted["ok"], adapted
            assert adapted["delivered"] == 1
            assert adapted["epoch"] == 1  # the when-handler committed a txn

            # traffic still flows through the lengthened chain
            assert echo_once(handle.data_address, key, b"after").body == b"after"
            stats = handle.control({"op": "stats", "session": key})
            assert stats["epoch"] == 1

    def test_telemetry_scrape(self):
        with GatewayServer().run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL})
            scraped = handle.control({"op": "telemetry"})
            assert scraped["ok"] and scraped["enabled"]
            names = {f["name"] for f in scraped["snapshot"]["families"]}
            assert any(n.startswith("mobigate_gateway_") for n in names)


class TestErrorPaths:
    def test_unknown_op(self):
        with GatewayServer().run_in_thread() as handle:
            reply = handle.control({"op": "frobnicate"})
            assert not reply["ok"] and "unknown op" in reply["error"]

    def test_bad_json_line(self):
        with GatewayServer().run_in_thread() as handle:
            with socket.create_connection(handle.control_address, timeout=10) as sock:
                sock.sendall(b"{not json\n")
                reply = json.loads(sock.makefile().readline())
            assert not reply["ok"] and "bad JSON" in reply["error"]

    def test_non_object_request(self):
        with GatewayServer().run_in_thread() as handle:
            reply = control_request(handle.control_address, ["not", "an", "object"])
            assert not reply["ok"]

    def test_missing_required_field(self):
        with GatewayServer().run_in_thread() as handle:
            reply = handle.control({"op": "stats"})  # no "session"
            assert not reply["ok"]

    def test_stats_for_unknown_session(self):
        with GatewayServer().run_in_thread() as handle:
            reply = handle.control({"op": "stats", "session": "ghost"})
            assert not reply["ok"] and "ghost" in reply["error"]

    def test_uncompilable_mcl_is_a_clean_error(self):
        with GatewayServer().run_in_thread() as handle:
            reply = handle.control({"op": "deploy", "mcl": "main stream broken{"})
            assert not reply["ok"]
            # the gateway survives the failure
            assert handle.control({"op": "health"})["ok"]

    def test_unknown_scheduler_rejected(self):
        with GatewayServer().run_in_thread() as handle:
            reply = handle.control({"op": "deploy", "mcl": MCL, "scheduler": "quantum"})
            assert not reply["ok"] and "quantum" in reply["error"]

    def test_unknown_event_rejected(self):
        with GatewayServer().run_in_thread() as handle:
            key = handle.control({"op": "deploy", "mcl": MCL})["session"]
            reply = handle.control(
                {"op": "reconfigure", "event": "MARTIAN_INVASION", "session": key}
            )
            assert not reply["ok"]
