"""End-to-end data-plane tests over real loopback sockets."""

import socket
import time

from repro.faults.plan import FaultPlan
from repro.gateway import ERROR_HEADER, GatewayConfig, GatewayServer
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message

MCL = """main stream chain{
  streamlet r0, r1 = new-streamlet (redirector);
  connect (r0.po, r1.pi);
}"""


class WireClient:
    """A blocking test client speaking the gateway's frame protocol."""

    def __init__(self, address, timeout=10.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.assembler = FrameAssembler()
        self.pending = []

    def send(self, message: MimeMessage) -> None:
        self.sock.sendall(serialize_message(message))

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def recv_frame(self) -> MimeMessage | None:
        """The next frame, or None once the gateway closes the connection."""
        while not self.pending:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.pending = self.assembler.feed(chunk)
        return self.pending.pop(0)

    def close(self) -> None:
        self.sock.close()


def tagged(body: bytes, session: str | None) -> MimeMessage:
    message = MimeMessage("application/octet-stream", body)
    if session is not None:
        message.headers.session = session
    return message


def deploy(handle, *, scheduler="threaded") -> str:
    reply = handle.control({"op": "deploy", "mcl": MCL, "scheduler": scheduler})
    assert reply["ok"], reply
    return reply["session"]


def poll_stats(handle, key, predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    stats = handle.control({"op": "stats", "session": key})
    while not predicate(stats):
        assert time.monotonic() < deadline, f"stats never converged: {stats}"
        time.sleep(0.02)
        stats = handle.control({"op": "stats", "session": key})
    return stats


class TestEcho:
    def test_roundtrip_threaded(self):
        with GatewayServer().run_in_thread() as handle:
            key = deploy(handle)
            client = WireClient(handle.data_address)
            try:
                client.send(tagged(b"ping", key))
                echo = client.recv_frame()
                assert echo is not None and echo.body == b"ping"
                # the gateway's internal connection stamp must not leak out
                assert echo.headers.get("X-MobiGATE-Connection") is None
            finally:
                client.close()
            stats = poll_stats(
                handle, key, lambda s: s["conservation"]["residual"] == 0
            )
            assert stats["conservation"]["balanced"], stats

    def test_roundtrip_inline_scheduler(self):
        with GatewayServer().run_in_thread() as handle:
            key = deploy(handle, scheduler="inline")
            client = WireClient(handle.data_address)
            try:
                for i in range(5):
                    client.send(tagged(f"m{i}".encode(), key))
                bodies = {client.recv_frame().body for _ in range(5)}
                assert bodies == {f"m{i}".encode() for i in range(5)}
            finally:
                client.close()

    def test_two_sessions_route_independently(self):
        with GatewayServer().run_in_thread() as handle:
            key_a, key_b = deploy(handle), deploy(handle)
            assert key_a != key_b
            a, b = WireClient(handle.data_address), WireClient(handle.data_address)
            try:
                a.send(tagged(b"for-a", key_a))
                b.send(tagged(b"for-b", key_b))
                assert a.recv_frame().body == b"for-a"
                assert b.recv_frame().body == b"for-b"
            finally:
                a.close()
                b.close()


class TestProtocolErrors:
    def test_unrouted_session_gets_error_frame_and_connection_survives(self):
        with GatewayServer().run_in_thread() as handle:
            key = deploy(handle)
            client = WireClient(handle.data_address)
            try:
                client.send(tagged(b"lost", "ghost-session"))
                error = client.recv_frame()
                assert error is not None
                assert "ghost-session" in error.headers.get(ERROR_HEADER)
                # framing is intact: the same connection still works
                client.send(tagged(b"found", key))
                assert client.recv_frame().body == b"found"
            finally:
                client.close()

    def test_missing_session_header_gets_error_frame(self):
        with GatewayServer().run_in_thread() as handle:
            deploy(handle)
            client = WireClient(handle.data_address)
            try:
                client.send(tagged(b"anon", None))
                error = client.recv_frame()
                assert error.headers.get(ERROR_HEADER) is not None
            finally:
                client.close()

    def test_malformed_frame_answers_error_and_closes(self):
        with GatewayServer().run_in_thread() as handle:
            deploy(handle)
            client = WireClient(handle.data_address)
            try:
                client.send_raw(b"this is not a header line\n\n")
                error = client.recv_frame()
                assert error is not None
                assert error.headers.get(ERROR_HEADER) is not None
                assert client.recv_frame() is None  # gateway closed it
            finally:
                client.close()

    def test_oversized_declaration_rejected(self):
        config = GatewayConfig(max_frame_bytes=1024)
        with GatewayServer(config=config).run_in_thread() as handle:
            key = deploy(handle)
            client = WireClient(handle.data_address)
            try:
                message = tagged(b"x", key)
                raw = serialize_message(message)
                head, _, _body = raw.partition(b"\n\n")
                head = head.replace(b"Content-Length: 1", b"Content-Length: 999999")
                client.send_raw(head + b"\n\n")
                error = client.recv_frame()
                assert error is not None
                assert error.headers.get(ERROR_HEADER) is not None
                assert client.recv_frame() is None
            finally:
                client.close()


class TestBackpressure:
    def test_saturated_session_parks_then_sheds_into_the_ledger(self):
        config = GatewayConfig(
            session_ingress_limit=2,
            park_timeout=0.08,
            park_poll_interval=0.005,
        )
        with GatewayServer(config=config).run_in_thread() as handle:
            key = deploy(handle)
            # freeze the stream: admitted messages stay resident, so the
            # session saturates and later frames park and shed
            paused = handle.control({"op": "reconfigure", "event": "PAUSE", "session": key})
            assert paused["ok"] and paused["delivered"] == 1, paused
            n_sent = 8
            client = WireClient(handle.data_address)
            try:
                for i in range(n_sent):
                    client.send(tagged(f"m{i}".encode(), key))
                # every frame lands in the ledger: 2 resident + 6 shed
                stats = poll_stats(
                    handle, key,
                    lambda s: s["conservation"]["admitted"] == n_sent,
                )
                assert stats["parked"] > 0
                assert stats["shed"] == n_sent - 2
                assert stats["conservation"]["queue_drops"] == n_sent - 2
                assert stats["conservation"]["balanced"], stats

                resumed = handle.control(
                    {"op": "reconfigure", "event": "RESUME", "session": key}
                )
                assert resumed["ok"], resumed
                survivors = {client.recv_frame().body for _ in range(2)}
                assert survivors == {b"m0", b"m1"}
            finally:
                client.close()
            stats = poll_stats(
                handle, key, lambda s: s["conservation"]["residual"] == 0
            )
            assert stats["conservation"]["balanced"], stats


class TestLinkOutage:
    def test_scripted_outage_stalls_reads_then_recovers(self):
        plan = FaultPlan()
        plan.link_outage(at=0.0, duration=0.5)
        gateway = GatewayServer(fault_plan=plan)
        begin = time.monotonic()
        with gateway.run_in_thread() as handle:
            key = deploy(handle)
            client = WireClient(handle.data_address)
            try:
                client.send(tagged(b"through the outage", key))
                echo = client.recv_frame()
                assert echo.body == b"through the outage"
            finally:
                client.close()
            # the echo cannot have completed before the outage window closed
            assert time.monotonic() - begin >= 0.45
            assert gateway.fault_gate.stalls >= 1
            assert plan.link_faults[0].applied
