"""The durability verbs: dead_letters, requeue, recovery, drain."""

import asyncio
import signal
import socket
import threading
import time

from repro.faults.supervisor import DeadLetter
from repro.gateway import GatewayConfig, GatewayServer
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message

MCL = """main stream chain{
  streamlet r0, r1 = new-streamlet (redirector);
  connect (r0.po, r1.pi);
}"""


def supervised_config(tmp_path, **overrides):
    defaults = dict(
        store_backend="file",
        store_path=str(tmp_path / "ledger.wal"),
        supervise=True,
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def park(gateway, key, msg_id, body=b"parked"):
    entry = DeadLetter(
        msg_id=msg_id,
        message=MimeMessage("text/plain", body),
        instance="r1",
        port="pi",
        attempts=3,
        reason="retries exhausted: test",
    )
    gateway.sessions[key].supervisor.dead_letters.add(entry)
    return entry


class TestSupervisedDeploy:
    def test_supervise_flag_attaches_a_supervisor(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path, dead_letter_capacity=7))
        with gateway.run_in_thread() as handle:
            deployed = handle.control({"op": "deploy", "mcl": MCL, "session": "k"})
            assert deployed["ok"]
            supervisor = gateway.sessions["k"].supervisor
            assert supervisor is not None
            assert supervisor.dead_letters.capacity == 7
            assert supervisor.scope == "k"  # ledger records carry the session key

    def test_default_deploy_is_unsupervised(self):
        gateway = GatewayServer()
        with gateway.run_in_thread() as handle:
            key = handle.control({"op": "deploy", "mcl": MCL})["session"]
            assert gateway.sessions[key].supervisor is None
            reply = handle.control({"op": "dead_letters", "session": key})
            assert reply["ok"] and reply["supervised"] is False
            assert reply["dead_letters"] == []


class TestDeadLettersVerb:
    def test_lists_parked_messages(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "k"})
            park(gateway, "k", "dl-1")
            reply = handle.control({"op": "dead_letters", "session": "k"})
            assert reply["supervised"] is True
            assert reply["evicted"] == 0
            [row] = reply["dead_letters"]
            assert row["msg_id"] == "dl-1"
            assert row["attempts"] == 3
            assert row["has_message"] is True

    def test_unknown_session_errors(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread() as handle:
            reply = handle.control({"op": "dead_letters", "session": "ghost"})
            assert reply["ok"] is False


class TestRequeueVerb:
    def test_requeue_readmits_the_parked_message(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "k"})
            park(gateway, "k", "dl-1")
            reply = handle.control({"op": "requeue", "session": "k", "msg_id": "dl-1"})
            assert reply["ok"], reply
            assert reply["msg_id"] == "dl-1"
            pool = gateway.sessions["k"].supervisor.dead_letters
            assert "dl-1" not in pool
            # the re-admitted copy settles with full accounting
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if gateway.sessions["k"].resident == 0:
                    break
                time.sleep(0.02)
            assert gateway.sessions["k"].resident == 0
            assert handle.control({"op": "recovery", "reconcile": True})["reconcile"][
                "balanced"
            ]

    def test_requeue_unknown_id_errors(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "k"})
            reply = handle.control({"op": "requeue", "session": "k", "msg_id": "nope"})
            assert reply["ok"] is False

    def test_payloadless_entry_stays_parked(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "k"})
            pool = gateway.sessions["k"].supervisor.dead_letters
            pool.add(
                DeadLetter(
                    msg_id="hollow", message=None, instance="r1",
                    port="pi", attempts=1, reason="body lost",
                )
            )
            reply = handle.control({"op": "requeue", "session": "k", "msg_id": "hollow"})
            assert reply["ok"] is False
            assert "hollow" in pool  # still inspectable after the refusal


class TestRecoveryVerb:
    def test_reports_the_boot_recovery_and_reconciles(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "k"})
            reply = handle.control({"op": "recovery", "reconcile": True})
            assert reply["ok"] and reply["enabled"] is True
            assert reply["recovery"]["restored"] == 0  # fresh ledger
            assert reply["reconcile"]["balanced"] is True

    def test_disabled_without_a_backend(self):
        with GatewayServer().run_in_thread() as handle:
            reply = handle.control({"op": "recovery"})
            assert reply["ok"] and reply["enabled"] is False
            assert reply["recovery"] is None


class TestDrain:
    def test_drain_coroutine_quiesces_and_reports_zero_leftover(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "k"})
            message = MimeMessage("text/plain", b"drain me")
            message.headers.session = "k"
            with socket.create_connection(handle.data_address, timeout=10) as sock:
                sock.sendall(serialize_message(message))
                assembler = FrameAssembler()
                frames = []
                while not frames:
                    chunk = sock.recv(65536)
                    assert chunk
                    frames = assembler.feed(chunk)
            future = asyncio.run_coroutine_threadsafe(gateway.drain(), handle._loop)
            leftover = future.result(timeout=10)
            assert leftover == {"k": 0}
            assert gateway.ledger.store.closed

    def test_drain_verb_shuts_the_gateway_down(self, tmp_path):
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "k"})
            reply = handle.control({"op": "drain"})
            assert reply["ok"] and reply["draining"] is True
            deadline = time.monotonic() + 10
            closed = False
            while time.monotonic() < deadline and not closed:
                closed = gateway.ledger.store.closed and not gateway.sessions
                time.sleep(0.02)
            assert closed

    def test_run_in_thread_wires_and_restores_sigterm(self, tmp_path):
        if threading.current_thread() is not threading.main_thread():
            return  # signal wiring only happens on the main thread
        before = signal.getsignal(signal.SIGTERM)
        gateway = GatewayServer(config=supervised_config(tmp_path))
        with gateway.run_in_thread():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before
