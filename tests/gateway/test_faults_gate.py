"""LinkOutageGate window arithmetic (the e2e stall is in test_data_plane)."""

import asyncio
from types import SimpleNamespace

from repro.faults.plan import FaultPlan
from repro.gateway import LinkOutageGate


def clock_at(t: float) -> SimpleNamespace:
    return SimpleNamespace(time=lambda: t)


class TestGate:
    def test_unarmed_gate_never_blocks(self):
        gate = LinkOutageGate(None)
        assert not gate.armed
        assert gate.blocked_for(123.0) == 0.0
        asyncio.run(gate.wait_clear())  # returns immediately
        assert gate.stalls == 0

    def test_non_outage_link_faults_are_ignored(self):
        plan = FaultPlan()
        plan.link_collapse(at=0.0, duration=5.0)
        assert not LinkOutageGate(plan).armed

    def test_window_is_relative_to_start(self):
        plan = FaultPlan()
        plan.link_outage(at=1.0, duration=0.5)
        gate = LinkOutageGate(plan)
        gate.start(clock_at(100.0))
        assert gate.blocked_for(100.9) == 0.0          # before the window
        remaining = gate.blocked_for(101.2)             # 0.2s into it
        assert abs(remaining - 0.3) < 1e-9
        assert gate.blocked_for(101.6) == 0.0          # after it
        assert plan.link_faults[0].applied

    def test_origin_is_fixed_once(self):
        plan = FaultPlan()
        plan.link_outage(at=0.0, duration=1.0)
        gate = LinkOutageGate(plan)
        gate.start(clock_at(50.0))
        gate.start(clock_at(999.0))  # must not re-anchor
        assert gate.blocked_for(50.5) > 0.0

    def test_overlapping_windows_pick_the_active_one(self):
        plan = FaultPlan()
        plan.link_outage(at=2.0, duration=1.0)
        plan.link_outage(at=0.0, duration=0.5)
        gate = LinkOutageGate(plan)
        gate.start(clock_at(0.0))
        assert abs(gate.blocked_for(0.25) - 0.25) < 1e-9
        assert gate.blocked_for(1.0) == 0.0
        assert abs(gate.blocked_for(2.5) - 0.5) < 1e-9
