"""Incremental frame assembly: chunk boundaries, ceilings, poisoning."""

import pytest

from repro.errors import MimeError
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message


def frame(body: bytes = b"payload", session: str | None = None) -> bytes:
    message = MimeMessage("text/plain", body)
    if session is not None:
        message.headers.session = session
    return serialize_message(message)


def tampered(raw: bytes, length_value: str) -> bytes:
    """The frame with its Content-Length header rewritten."""
    head, _, body = raw.partition(b"\n\n")
    lines = []
    for line in head.split(b"\n"):
        if line.lower().startswith(b"content-length:"):
            line = b"Content-Length: " + length_value.encode()
        lines.append(line)
    return b"\n".join(lines) + b"\n\n" + body


class TestReassembly:
    def test_whole_frame_in_one_chunk(self):
        asm = FrameAssembler()
        (message,) = asm.feed(frame(b"hello"))
        assert message.body == b"hello"
        assert asm.frames_out == 1

    def test_byte_at_a_time(self):
        raw = frame(b"drip-fed body", session="sess-7")
        asm = FrameAssembler()
        collected = []
        for i in range(len(raw)):
            collected += asm.feed(raw[i : i + 1])
        assert len(collected) == 1
        assert collected[0].body == b"drip-fed body"
        assert collected[0].session == "sess-7"
        assert asm.bytes_in == len(raw)

    def test_many_frames_in_one_chunk(self):
        raw = b"".join(frame(f"m{i}".encode()) for i in range(5))
        asm = FrameAssembler()
        messages = asm.feed(raw)
        assert [m.body for m in messages] == [f"m{i}".encode() for i in range(5)]

    def test_frame_split_across_chunks_with_trailing_start(self):
        a, b = frame(b"first"), frame(b"second")
        raw = a + b
        cut = len(a) + 3  # mid-headers of the second frame
        asm = FrameAssembler()
        first = asm.feed(raw[:cut])
        second = asm.feed(raw[cut:])
        assert [m.body for m in first] == [b"first"]
        assert [m.body for m in second] == [b"second"]

    def test_empty_chunk_is_harmless(self):
        asm = FrameAssembler()
        assert asm.feed(b"") == []


class TestRejection:
    def test_negative_length(self):
        asm = FrameAssembler()
        with pytest.raises(MimeError, match="negative"):
            asm.feed(tampered(frame(), "-5"))

    def test_unparseable_length(self):
        asm = FrameAssembler()
        with pytest.raises(MimeError, match="Content-Length"):
            asm.feed(tampered(frame(), "banana"))

    def test_declared_length_beyond_ceiling_rejected_before_buffering(self):
        asm = FrameAssembler(max_frame_bytes=1024)
        # only the headers are fed: the declaration alone must be enough
        head = tampered(frame(), "1000000").partition(b"\n\n")[0] + b"\n\n"
        with pytest.raises(MimeError, match="ceiling"):
            asm.feed(head)

    def test_header_block_ceiling(self):
        asm = FrameAssembler(max_header_bytes=64)
        message = MimeMessage("text/plain", b"x")
        message.headers.set("X-Padding", "p" * 200)
        with pytest.raises(MimeError, match="header"):
            asm.feed(serialize_message(message))

    def test_unterminated_header_growth_is_bounded(self):
        asm = FrameAssembler(max_header_bytes=128)
        with pytest.raises(MimeError, match="header"):
            for _ in range(64):  # never sends the blank line
                asm.feed(b"X-Run-On: aaaaaaaaaaaaaaaa\n")

    def test_error_poisons_the_assembler(self):
        asm = FrameAssembler()
        with pytest.raises(MimeError):
            asm.feed(tampered(frame(), "-1"))
        with pytest.raises(MimeError):
            asm.feed(frame(b"fine frame, broken stream"))
