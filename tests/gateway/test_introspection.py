"""The live introspection plane: introspect / attribution / events / metrics.

The concurrency test is the satellite's acceptance check: the verbs must
return consistent snapshots while a fleet of loopback clients streams
frames, without exceptions and with monotonic event cursors.
"""

import socket
import threading

from repro.gateway import GatewayServer
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message
from repro.telemetry import NULL_TELEMETRY, MetricsRegistry, Telemetry

MCL = """main stream chain{
  streamlet r0, r1 = new-streamlet (redirector);
  connect (r0.po, r1.pi);
}"""


def observed_gateway() -> GatewayServer:
    return GatewayServer(telemetry=Telemetry(registry=MetricsRegistry()))


def deploy(handle, *, scheduler="threaded") -> str:
    reply = handle.control({"op": "deploy", "mcl": MCL, "scheduler": scheduler})
    assert reply["ok"], reply
    return reply["session"]


def echo_loop(address, key, n_messages, failures):
    """One blocking client: n closed-loop round-trips."""
    try:
        with socket.create_connection(address, timeout=30.0) as sock:
            assembler = FrameAssembler()
            for i in range(n_messages):
                message = MimeMessage("application/octet-stream", b"x%d" % i)
                message.headers.session = key
                sock.sendall(serialize_message(message))
                frames = []
                while not frames:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise ConnectionError("gateway closed mid-run")
                    frames = assembler.feed(chunk)
    except Exception as exc:  # surfaced by the main thread
        failures.append(exc)


class TestVerbs:
    def test_introspect_reports_queues_workers_and_recorder(self):
        with observed_gateway().run_in_thread() as handle:
            key = deploy(handle)
            state = handle.control({"op": "introspect"})
            assert state["ok"]
            session = state["sessions"][key]
            assert session["snapshot_version"] >= 1
            assert isinstance(session["queues"], list) and session["queues"]
            for row in session["queues"]:
                assert {"channel", "depth", "watermark", "capacity_bytes"} <= set(row)
            assert session["workers"], "threaded scheduler must expose workers"
            assert all(w["alive"] for w in session["workers"].values())
            recorder = state["recorder"]
            assert recorder["enabled"] is True
            assert recorder["recorded"] >= 0

    def test_introspect_on_unobserved_gateway_still_answers(self):
        with GatewayServer(telemetry=NULL_TELEMETRY).run_in_thread() as handle:
            deploy(handle)
            state = handle.control({"op": "introspect"})
            assert state["ok"]
            assert state["recorder"]["enabled"] is False

    def test_worker_utilization_appears_after_traffic(self):
        with observed_gateway().run_in_thread() as handle:
            key = deploy(handle)
            failures = []
            echo_loop(handle.data_address, key, 20, failures)
            assert not failures
            state = handle.control({"op": "introspect"})
            workers = state["sessions"][key]["workers"]
            stepped = [w for w in workers.values() if w.get("steps", 0) > 0]
            assert stepped, workers
            for worker in stepped:
                assert worker["busy_seconds"] > 0.0
                assert 0.0 <= worker["utilization"] <= 1.0

    def test_attribution_verb_decomposes_latency(self):
        with observed_gateway().run_in_thread() as handle:
            key = deploy(handle)
            failures = []
            echo_loop(handle.data_address, key, 10, failures)
            assert not failures
            reply = handle.control({"op": "attribution", "session": key})
            assert reply["ok"] and reply["enabled"]
            d = reply["decomposition"]
            assert d["messages"] >= 10
            assert d["component_sum_seconds"] > 0.0
            assert d["e2e_mean_seconds"] > 0.0
            assert d["coverage"] > 0.0
            assert reply["components"]["service"]["rows"]

    def test_attribution_disabled_and_unknown_session(self):
        with GatewayServer(telemetry=NULL_TELEMETRY).run_in_thread() as handle:
            reply = handle.control({"op": "attribution"})
            assert reply["ok"] and reply["enabled"] is False
        with observed_gateway().run_in_thread() as handle:
            reply = handle.control({"op": "attribution", "session": "nope"})
            assert reply["ok"] is False

    def test_events_verb_pages_with_cursor(self):
        with observed_gateway().run_in_thread() as handle:
            recorder = handle.gateway.telemetry.recorder
            for i in range(5):
                recorder.record("tick", n=i)
            first = handle.control({"op": "events", "limit": 3})
            assert first["ok"] and first["enabled"]
            assert len(first["events"]) == 3
            rest = handle.control({"op": "events", "cursor": first["cursor"]})
            seqs = [e["seq"] for e in first["events"] + rest["events"]]
            assert seqs == sorted(seqs)
            assert handle.control({"op": "events", "cursor": -1})["ok"] is False
            assert handle.control({"op": "events", "limit": "x"})["ok"] is False

    def test_metrics_verb_serves_prometheus_text(self):
        with observed_gateway().run_in_thread() as handle:
            key = deploy(handle)
            failures = []
            echo_loop(handle.data_address, key, 5, failures)
            assert not failures
            reply = handle.control({"op": "metrics"})
            assert reply["ok"] and reply["enabled"]
            assert "mobigate_hop_seconds" in reply["metrics"]
            assert "mobigate_queue_depth" in reply["metrics"]
        with GatewayServer(telemetry=NULL_TELEMETRY).run_in_thread() as handle:
            reply = handle.control({"op": "metrics"})
            assert reply["ok"] and reply["enabled"] is False
            assert reply["metrics"] == ""


class TestConcurrency:
    def test_introspection_under_streaming_load(self):
        """100 clients stream while the control plane is interrogated."""
        n_clients, per_client = 100, 5
        with observed_gateway().run_in_thread() as handle:
            key = deploy(handle)
            failures: list = []
            threads = [
                threading.Thread(
                    target=echo_loop,
                    args=(handle.data_address, key, per_client, failures),
                )
                for _ in range(n_clients)
            ]
            for t in threads:
                t.start()

            cursors = [0]
            try:
                while any(t.is_alive() for t in threads):
                    state = handle.control({"op": "introspect"}, timeout=30.0)
                    assert state["ok"], state
                    session = state["sessions"][key]
                    assert session["queues"] is not None
                    attrib = handle.control(
                        {"op": "attribution", "session": key}, timeout=30.0
                    )
                    assert attrib["ok"], attrib
                    events = handle.control(
                        {"op": "events", "cursor": cursors[-1]}, timeout=30.0
                    )
                    assert events["ok"], events
                    assert events["cursor"] >= cursors[-1]
                    cursors.append(events["cursor"])
                    metrics = handle.control({"op": "metrics"}, timeout=30.0)
                    assert metrics["ok"], metrics
            finally:
                for t in threads:
                    t.join(timeout=60.0)
            assert not failures, failures[:3]
            assert cursors == sorted(cursors)

            # the fleet is done: queues drained, ledger balanced
            stats = handle.control({"op": "stats", "session": key}, timeout=30.0)
            assert stats["conservation"]["balanced"], stats
            final = handle.control({"op": "introspect"})
            assert final["sessions"][key]["resident"] == 0
            assert all(
                row["depth"] == 0 for row in final["sessions"][key]["queues"]
            )
