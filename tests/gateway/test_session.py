"""GatewaySession admission: bounded ingress, retry, shed, conservation."""

import threading

import pytest

from repro.apps import build_server
from repro.errors import QueueClosedError
from repro.faults.invariant import assert_conservation, check_conservation
from repro.gateway.session import ADMITTED, FULL, RETRY, SHED, GatewaySession
from repro.mime.message import MimeMessage

MCL = """main stream chain{
  streamlet r0, r1 = new-streamlet (redirector);
  connect (r0.po, r1.pi);
}"""


class _InertScheduler:
    """Never moves a message — keeps admitted traffic resident forever."""

    def stop(self) -> None:
        pass


def deploy_session(ingress_limit=2):
    server = build_server()
    stream = server.deploy_script(MCL)
    session = GatewaySession(
        "k1", stream, _InertScheduler(), ingress_limit=ingress_limit
    )
    return server, stream, session


def message(tag: str = "m") -> MimeMessage:
    return MimeMessage("text/plain", tag.encode())


class TestBoundedOffer:
    def test_admits_until_the_ingress_bound_then_reports_full(self):
        _server, stream, session = deploy_session(ingress_limit=2)
        try:
            assert session.offer(message("a")).status == ADMITTED
            assert session.offer(message("b")).status == ADMITTED
            assert session.resident == 2
            assert session.offer(message("c")).status == FULL
            # FULL admits nothing: the ledger only saw the two residents
            assert check_conservation(stream).admitted == 2
        finally:
            session.close()

    def test_abandoned_full_offer_is_shed_into_the_ledger(self):
        _server, stream, session = deploy_session(ingress_limit=1)
        try:
            assert session.offer(message("a")).status == ADMITTED
            ticket = session.offer(message("b"))
            assert ticket.status == FULL
            shed = session.abandon(ticket, message("b"))
            assert shed.status == SHED
            report = assert_conservation(stream)
            assert report.admitted == 2
            assert report.queue_drops == 1
            assert report.residual == 1
        finally:
            session.close()
        # ending the stream drains the resident message as an end drop;
        # the ledger must still balance
        report = assert_conservation(stream)
        assert report.residual == 0
        assert report.end_drops == 1

    def test_session_stamps_runtime_session_header(self):
        _server, stream, session = deploy_session()
        try:
            msg = message("a")
            assert msg.session is None
            session.offer(msg)
            assert msg.session == stream.session
        finally:
            session.close()

    def test_closed_session_refuses_offers(self):
        _server, _stream, session = deploy_session()
        session.close()
        with pytest.raises(QueueClosedError):
            session.offer(message("a"))


class TestContention:
    def test_contended_queue_yields_retry_then_admits(self):
        _server, stream, session = deploy_session(ingress_limit=4)
        queue = next(iter(stream.ingress.values())).queue
        held = threading.Event()
        release = threading.Event()

        def hold():
            with queue._lock:
                held.set()
                release.wait(5)

        t = threading.Thread(target=hold)
        t.start()
        assert held.wait(5)
        try:
            ticket = session.offer(message("a"))
            assert ticket.status == RETRY
            assert ticket.msg_id is not None  # already admitted to the pool
        finally:
            release.set()
            t.join(timeout=5)
        try:
            ticket = session.retry(ticket, message("a"))
            assert ticket.status == ADMITTED
            assert_conservation(stream)
        finally:
            session.close()

    def test_abandoned_retry_releases_the_admitted_id(self):
        _server, stream, session = deploy_session(ingress_limit=4)
        queue = next(iter(stream.ingress.values())).queue
        held = threading.Event()
        release = threading.Event()

        def hold():
            with queue._lock:
                held.set()
                release.wait(5)

        t = threading.Thread(target=hold)
        t.start()
        assert held.wait(5)
        try:
            ticket = session.offer(message("a"))
            assert ticket.status == RETRY
        finally:
            release.set()
            t.join(timeout=5)
        try:
            session.abandon(ticket, message("a"))
            report = assert_conservation(stream)
            assert report.queue_drops == 1
            assert report.residual == 0
        finally:
            session.close()
