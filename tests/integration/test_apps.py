"""End-to-end tests of the two thesis applications (sections 4.3 and 7.5)."""

import pytest

from repro.apps import DISTILLATION_MCL, WEB_ACCELERATION_MCL, build_server
from repro.client.client import MobiGateClient
from repro.codecs.imagefmt import decode_gif, decode_jpeg
from repro.netsim.emulator import DirectTransfer, EndToEndEmulator
from repro.netsim.link import WirelessLink
from repro.netsim.monitor import ContextMonitor
from repro.netsim.traces import BandwidthTrace
from repro.runtime.scheduler import InlineScheduler
from repro.semantics import analyze
from repro.util.clock import VirtualClock
from repro.workloads.content import ps_page_message
from repro.workloads.generators import WebWorkload


class TestDistillationApp:
    def deploy(self):
        server = build_server()
        stream = server.deploy_script(DISTILLATION_MCL)
        return server, stream, InlineScheduler(stream)

    def test_compiles_and_verifies(self):
        server = build_server()
        table = server.compile(DISTILLATION_MCL).main_table()
        report = analyze(table)
        assert report.consistent, report.summary()
        # the optional entities are dormant until events arrive
        assert table.dormant_instances() == {"s3", "s4"}

    def test_page_distilled(self):
        _server, stream, scheduler = self.deploy()
        page = ps_page_message(n_images=2, paragraphs=6, seed=1)
        original_size = page.total_size()
        [merged] = scheduler.run_to_completion([page])
        assert merged.is_multipart
        assert len(merged.parts) == 3
        assert merged.total_size() < original_size  # distillation shrank it

    def test_low_gray_event_inserts_grayscale(self):
        server, stream, scheduler = self.deploy()
        server.events.raise_event("LOW_GRAY")
        page = ps_page_message(n_images=1, paragraphs=2, seed=2)
        [merged] = scheduler.run_to_completion([page])
        image_part = next(p for p in merged.parts if p.content_type.maintype == "image")
        raster = decode_gif(image_part.body)
        import numpy as np

        # grayscale: R and G channels nearly equal after palette roundtrip
        px = raster.pixels.astype(int)
        assert np.abs(px[:, :, 0] - px[:, :, 1]).max() <= 36

    def test_low_energy_event_bundles(self):
        server, stream, scheduler = self.deploy()
        server.events.raise_event("LOW_ENERGY")
        pages = [ps_page_message(n_images=1, paragraphs=2, seed=s) for s in range(4)]
        outs = scheduler.run_to_completion(pages)
        # powerSaving bundles 4 merged pages into one burst
        assert len(outs) == 1
        assert outs[0].headers.get("X-MobiGATE-Bundle") == "4"


class TestWebAccelerationApp:
    def test_compiles_and_verifies(self):
        server = build_server()
        table = server.compile(WEB_ACCELERATION_MCL).main_table()
        assert analyze(table).consistent
        assert table.dormant_instances() == {"tc"}

    def make_emulated(self, bandwidth_bps, *, trace=None, delay=0.0, threshold=100_000):
        clock = VirtualClock()
        server = build_server(clock=clock)
        stream = server.deploy_script(WEB_ACCELERATION_MCL)
        link = WirelessLink(bandwidth_bps, propagation_delay=delay, clock=clock)
        monitor = ContextMonitor(
            link, server.events, low_threshold_bps=threshold, trace=trace
        )
        client = MobiGateClient()
        emulator = EndToEndEmulator(stream, link, client, monitor=monitor)
        return server, stream, emulator, client

    def test_images_transcoded_and_delivered(self):
        _server, _stream, emulator, client = self.make_emulated(1_000_000)
        workload = list(WebWorkload(image_fraction=1.0, seed=3).messages(3))
        report = emulator.run(workload)
        assert report.messages_delivered == 3
        delivered = client.take_delivered()
        for message in delivered:
            assert message.content_type.essence == "image/jpeg"
            decode_jpeg(message.body)  # decodable
        assert report.reduction_ratio < 1.0

    def test_text_uncompressed_on_fast_link(self):
        _server, _stream, emulator, client = self.make_emulated(1_000_000)
        workload = list(WebWorkload(image_fraction=0.0, seed=4).messages(3))
        originals = [m.body for m in workload]
        emulator.run(workload)
        assert [m.body for m in client.take_delivered()] == originals

    def test_low_bandwidth_inserts_compressor_transparently(self):
        trace = BandwidthTrace.step(1_000_000, 50_000, at=0.0001)
        _server, stream, emulator, client = self.make_emulated(
            1_000_000, trace=trace
        )
        workload = list(WebWorkload(image_fraction=0.0, seed=5).messages(4))
        originals = [m.body for m in workload]
        report = emulator.run(workload)
        # the compressor joined the topology...
        assert "tc" in stream.instance_names()
        assert stream.stats.events_handled >= 1
        # ...bytes on the link shrank...
        assert report.reduction_ratio < 0.7
        # ...and the client still sees the original payloads (peer reversal)
        assert [m.body for m in client.take_delivered()] == originals

    def test_recovery_extracts_compressor(self):
        # a fade long enough to cover the whole first batch of sends
        trace = BandwidthTrace.fade(1_000_000, 50_000, start=0.0001, duration=30.0)
        server, stream, emulator, client = self.make_emulated(1_000_000, trace=trace)
        workload = list(WebWorkload(image_fraction=0.0, seed=6).messages(2))
        emulator.run(workload)  # LOW fires during the fade
        assert stream.stats.events_handled >= 1
        # advance past the fade; next check raises HIGH and extracts tc
        emulator.clock.advance_to(60.0)
        more = list(WebWorkload(image_fraction=0.0, seed=7).messages(2))
        originals = [m.body for m in more]
        emulator.run(more)
        assert stream.stats.events_handled >= 2
        delivered = client.take_delivered()
        assert [m.body for m in delivered[-2:]] == originals
        # after extraction the last messages crossed uncompressed
        assert all(
            "text_decompress" not in m.headers.peer_stack() for m in delivered[-2:]
        )


class TestEquation72:
    """T2 = T1 + (overhead - reduced/bandwidth): who wins where."""

    def run_pair(self, bandwidth_bps, n=6, seed=8):
        clock = VirtualClock()
        server = build_server(clock=clock)
        stream = server.deploy_script(WEB_ACCELERATION_MCL)
        link = WirelessLink(bandwidth_bps, clock=clock)
        client = MobiGateClient()
        emulator = EndToEndEmulator(stream, link, client)
        workload = list(WebWorkload(seed=seed).messages(n))
        with_proxy = emulator.run(workload)

        base_clock = VirtualClock()
        base_link = WirelessLink(bandwidth_bps, clock=base_clock)
        workload_again = list(WebWorkload(seed=seed).messages(n))
        without = DirectTransfer(base_link).run(workload_again)
        return with_proxy, without

    def test_mobigate_wins_at_low_bandwidth(self):
        with_proxy, without = self.run_pair(50_000)
        assert with_proxy.elapsed < without.elapsed
        assert with_proxy.goodput_bps > without.goodput_bps

    def test_size_reduction_happened(self):
        with_proxy, without = self.run_pair(200_000)
        assert with_proxy.bytes_on_link < without.bytes_on_link
