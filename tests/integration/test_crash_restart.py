"""Real process deaths: kill -9 cycles and the graceful SIGTERM drain."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.store import CrashHarness

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def test_kill9_cycles_lose_no_acked_messages(tmp_path):
    harness = CrashHarness(tmp_path / "store", backend="file", cycles=3, burst=16, seed=7)
    report = harness.run()
    assert report.sent_total == 3 * 16
    assert report.acked_total >= 3  # the seeded ack targets were reached
    assert report.lost_acked == 0
    assert report.balanced and report.missing == 0
    # every restart after the first found the session in the ledger
    assert all(c.restored == 1 for c in report.cycles[1:])


def test_ledger_replay_restores_residency_accounting(tmp_path):
    # two cycles, then inspect the folded ledger the harness left behind:
    # everything the parent ever sent must have a recorded fate or be
    # frozen in a recovered_in_flight tally — nothing simply vanishes
    harness = CrashHarness(tmp_path / "store", backend="file", cycles=2, burst=12, seed=3)
    report = harness.run()
    assert report.lost_acked == 0 and report.balanced
    from repro.store import FileWALStore, fold

    store = FileWALStore(str(tmp_path / "store" / "ledger.wal"))
    sf = fold(store.replay()).session(harness.session_key)
    store.close()
    assert sf.recoveries >= 2
    assert sf.admitted == (
        sf.delivered + sf.absorbed + sf.dead_lettered + sf.dropped
        + sf.recovered_in_flight + sf.running_in_flight
    )
    assert sf.delivered >= report.acked_total


def test_kill9_with_process_scheduler_balances_with_recovered_in_flight(tmp_path):
    """Satellite 4: the whole gateway — shard children included — dies by
    SIGKILL mid-flight, and the next generation's ledger still balances.

    The process-plane session is recorded in the ledger with its
    scheduler, so recovery redeploys it sharded; the cross-crash fold
    freezes whatever the dead generation had in flight into
    ``recovered_in_flight``, and no acked frame may go missing.  The
    restarted generation's stale-segment sweep must also leave /dev/shm
    clean — a SIGKILL skips every atexit hook in the dying process.
    """
    harness = CrashHarness(
        tmp_path / "store", backend="file", cycles=2, burst=12, seed=11,
        scheduler="process",
    )
    report = harness.run()
    assert report.sent_total == 2 * 12
    assert report.lost_acked == 0
    assert report.balanced and report.missing == 0
    assert all(c.restored == 1 for c in report.cycles[1:])

    from repro.store import FileWALStore, fold

    store = FileWALStore(str(tmp_path / "store" / "ledger.wal"))
    sf = fold(store.replay()).session(harness.session_key)
    store.close()
    assert sf.admitted == (
        sf.delivered + sf.absorbed + sf.dead_lettered + sf.dropped
        + sf.recovered_in_flight + sf.running_in_flight
    )
    # the final graceful generation swept the killed generations' segments
    leftovers = [n for n in os.listdir("/dev/shm") if n.startswith("mgps_")]
    assert leftovers == []


def _spawn_gateway(store_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC_ROOT), env.get("PYTHONPATH")) if p
    )
    child = subprocess.Popen(
        [
            sys.executable, "-m", "repro.gateway",
            "--store", str(store_path), "--backend", "file", "--supervise",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    line = child.stdout.readline().decode()
    return child, json.loads(line)


def test_sigterm_drains_and_exits_cleanly(tmp_path):
    from repro.gateway.control_plane import control_request

    child, boot = _spawn_gateway(tmp_path / "ledger.wal")
    try:
        assert boot["recovered"] == 0
        host, port = boot["control"]
        reply = control_request((host, port), {"op": "health"}, timeout=5)
    except Exception:
        child.kill()
        raise
    assert reply.get("ok") is True
    child.send_signal(signal.SIGTERM)
    assert child.wait(timeout=15) == 0
    assert (tmp_path / "ledger.wal").exists()


def test_sigterm_after_traffic_leaves_a_recoverable_ledger(tmp_path):
    from repro.gateway.control_plane import control_request
    from repro.store import FileWALStore, fold

    mcl = """main stream chain{
      streamlet r0, r1 = new-streamlet (redirector);
      connect (r0.po, r1.pi);
    }"""
    path = tmp_path / "ledger.wal"
    child, boot = _spawn_gateway(path)
    try:
        host, port = boot["control"]
        deployed = control_request(
            (host, port), {"op": "deploy", "mcl": mcl, "session": "term-1"}, timeout=5
        )
        assert deployed["ok"]
    except Exception:
        child.kill()
        raise
    began = time.monotonic()
    child.send_signal(signal.SIGTERM)
    assert child.wait(timeout=15) == 0
    assert time.monotonic() - began < 15
    store = FileWALStore(str(path))
    out = fold(store.replay())
    store.close()
    # drain is not an undeploy: the session stays recoverable
    [sf] = out.recoverable()
    assert sf.session == "term-1"
    assert not sf.undeployed
