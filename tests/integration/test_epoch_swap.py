"""End-to-end: a transactional epoch swap from server to client.

The server commits a reconfiguration mid-stream (inserting, then
extracting, the text compressor); the committed epoch rides the
``Content-Session`` header across the wire; the client applies its
staged peer-chain swap at exactly the first message of the new epoch.
The §7.2 conservation invariant is re-checked across every transition,
and stragglers from a retired epoch park as structured dead-letters
instead of unwinding the delivery loop.
"""

from repro.apps import build_server
from repro.client.client import MobiGateClient
from repro.client.client_pool import ClientStreamletPool
from repro.client.peers import TextDecompress
from repro.faults.invariant import check_conservation
from repro.mcl import astnodes as ast
from repro.mime.mediatype import TEXT_PLAIN
from repro.mime.message import MimeMessage
from repro.runtime.reconfig import ReconfigTransaction
from repro.runtime.scheduler import InlineScheduler
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a, b = new-streamlet (tap);
  streamlet tc = new-streamlet (text_compress);
  connect (a.po, b.pi);
}
"""

PEER = "text_decompress"


def deploy():
    server = build_server(clock=VirtualClock())
    stream = server.deploy_script(SOURCE)
    return server, stream, InlineScheduler(stream)


def post_round(stream, scheduler, tag, n=3):
    bodies = [f"{tag}-{i} ".encode() * 40 for i in range(n)]
    for body in bodies:
        stream.post(MimeMessage(TEXT_PLAIN, body))
    scheduler.pump()
    return bodies, stream.collect()


class TestEpochSwapOverTheWire:
    def test_mid_stream_swap_delivers_every_message_once(self):
        _server, stream, scheduler = deploy()
        client = MobiGateClient(pool=ClientStreamletPool(include_builtin=False))

        # epoch 0: plain traffic, no epoch parameter on the wire
        bodies0, wire0 = post_round(stream, scheduler, "plain")
        assert all(m.headers.epoch is None for m in wire0)
        for m in wire0:
            client.receive(m)

        # commit the compressor; stage the matching peer on the client
        ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ]).execute()
        client.stage_epoch(1, {PEER: TextDecompress})

        bodies1, wire1 = post_round(stream, scheduler, "zipped")
        assert all(m.headers.epoch == 1 for m in wire1)
        assert all("Content-Encoding" in [n for n, _ in m.headers] for m in wire1)
        for m in wire1:
            client.receive(m)
        assert client.epoch == 1

        # epoch 2: the compressor leaves again; the client unstages its peer
        ReconfigTransaction(stream, [
            ast.RemoveInstance("extract", "tc"),
        ]).execute()
        client.stage_epoch(2, {PEER: None})
        bodies2, wire2 = post_round(stream, scheduler, "after")
        assert all(m.headers.epoch == 2 for m in wire2)
        for m in wire2:
            client.receive(m)
        assert client.epoch == 2

        # every message of every epoch delivered exactly once, decompressed
        assert [m.body for m in client.take_delivered()] == (
            bodies0 + bodies1 + bodies2
        )
        assert client.dead_letters == []
        report = check_conservation(stream)
        assert report.balanced and report.lost == 0
        assert stream.epoch == 2

    def test_straggler_from_retired_epoch_parks_as_stale(self):
        _server, stream, scheduler = deploy()
        client = MobiGateClient(pool=ClientStreamletPool(include_builtin=False))
        client.register_peer(PEER, TextDecompress)
        client.stage_epoch(2, {PEER: None})

        # the client has moved on to epoch 2 ...
        fresh = MimeMessage(TEXT_PLAIN, b"fresh")
        fresh.headers.set("Content-Session", "sess-1")
        fresh.headers.set_epoch(2)
        assert len(client.receive(fresh)) == 1

        # ... when an epoch-1 message naming the retired peer limps in
        straggler = MimeMessage(TEXT_PLAIN, b"late")
        straggler.headers.set("Content-Session", "sess-1")
        straggler.headers.set_epoch(1)
        straggler.headers.push_peer(PEER)
        assert client.receive(straggler) == []
        [dl] = client.dead_letters
        assert dl.reason == "stale-peer"
        assert dl.peer_id == PEER
        assert dl.epoch == 1

    def test_swap_with_messages_in_flight(self):
        # messages posted before the commit but still queued cross the
        # epoch boundary inside the server; none may be lost or doubled
        _server, stream, scheduler = deploy()
        client = MobiGateClient(pool=ClientStreamletPool(include_builtin=False))
        client.stage_epoch(1, {PEER: TextDecompress})

        stream.node("b").streamlet.pause()
        parked = [f"parked-{i} ".encode() * 40 for i in range(3)]
        for body in parked:
            stream.post(MimeMessage(TEXT_PLAIN, body))
        scheduler.pump()
        assert stream.node("b").inputs["pi"].pending() == 3

        ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ]).execute()
        stream.node("b").streamlet.activate()
        late = [f"late-{i} ".encode() * 40 for i in range(2)]
        for body in late:
            stream.post(MimeMessage(TEXT_PLAIN, body))
        scheduler.pump()
        for m in stream.collect():
            client.receive(m)
        assert [m.body for m in client.take_delivered()] == parked + late
        assert client.dead_letters == []
        report = check_conservation(stream)
        assert report.balanced and report.lost == 0
