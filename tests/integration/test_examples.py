"""Every example script must run cleanly — they are living documentation."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"


def test_expected_examples_present():
    assert {
        "quickstart",
        "distillation",
        "web_acceleration",
        "semantic_analysis",
        "recursive_composition",
        "personalization",
        "wireless_tcp",
    } <= set(EXAMPLES)
