"""Full-stack soak: threaded server, wire transport, threaded client.

The closest thing to the thesis's live testbed: the web-acceleration
stream runs under the thread-per-streamlet engine, every processed
message is serialised to wire bytes, and a multi-worker client
distributor reverse-processes them — while a LOW_BANDWIDTH event lands
mid-run.  The invariant is total content fidelity: every offered payload
arrives exactly once, byte-identical.
"""

import threading
import time

import pytest

from repro.apps import WEB_ACCELERATION_MCL, build_server
from repro.client.client_pool import ClientStreamletPool
from repro.client.distributor import MessageDistributor
from repro.mime.wire import parse_message, serialize_message
from repro.runtime.scheduler import ThreadedScheduler
from repro.workloads.generators import WebWorkload


def test_threaded_end_to_end_soak():
    # drop_timeout gives producers backpressure: under burst load they wait
    # for queue space instead of exercising the Figure 6-9 drop policy,
    # which is what a no-loss soak needs
    server = build_server(drop_timeout=2.0)
    stream = server.deploy_script(WEB_ACCELERATION_MCL)
    scheduler = ThreadedScheduler(stream, poll_interval=0.0005)
    scheduler.start()

    delivered = []
    delivered_lock = threading.Lock()

    def deliver(message):
        with delivered_lock:
            delivered.append(message)

    distributor = MessageDistributor(ClientStreamletPool())
    distributor.start(deliver, workers=3)

    # the communicator terminal hands processed messages to this transport
    outbox = []
    outbox_lock = threading.Lock()

    def transport(message):
        with outbox_lock:
            outbox.append(message)

    stream.set_param("comm", "transport", transport)

    workload = list(WebWorkload(seed=99, image_fraction=0.3).messages(40))
    offered_texts = [
        m.body for m in workload if m.content_type.maintype == "text"
    ]
    n_offered = len(workload)

    try:
        # feed while the scheduler runs; fire the event mid-stream
        for index, message in enumerate(workload):
            stream.post(message)
            if index == 10:
                server.events.raise_event("LOW_BANDWIDTH")
                scheduler.ensure_workers()
            time.sleep(0.0005)
        assert scheduler.drain(timeout=60)

        # ship everything over "the air" into the client
        with outbox_lock:
            processed_messages = list(outbox)
        for processed in processed_messages:
            distributor.submit(parse_message(serialize_message(processed)))
        distributor.drain()
    finally:
        distributor.stop()
        scheduler.stop()
        stream.end()

    with delivered_lock:
        results = list(delivered)
    assert len(results) == n_offered
    # every text payload arrives byte-identical (images are lossy by design)
    delivered_texts = [
        m.body for m in results if m.content_type.maintype == "text"
    ]
    assert sorted(delivered_texts) == sorted(offered_texts)
    assert stream.stats.processing_failures == 0
    assert stream.stats.queue_drops == 0
