"""Upstream (client-to-server) deployment (thesis section 3.2).

"The MobiGATE server may reside in mobile nodes, while the MobiGATE client
is placed at proxies in the wired network ... the architecture is
sufficiently flexible to be used to address upstream communications as
well."  Nothing in the runtime is direction-specific, and this test pins
that claim: the *mobile* host runs a server-side stream that compresses
and encrypts outgoing data before the weak uplink; the *wired* proxy runs
the MobiGATE client machinery to reverse it.
"""

import pytest

from repro.apps import build_server
from repro.client.client import MobiGateClient
from repro.mime.message import MimeMessage
from repro.mime.wire import parse_message, serialize_message
from repro.netsim.link import WirelessLink
from repro.runtime.scheduler import InlineScheduler
from repro.util.clock import VirtualClock

UPLINK_STREAM = """
main stream uplink{
  streamlet comp = new-streamlet (text_compress);
  streamlet enc = new-streamlet (encryptor);
  connect (comp.po, enc.pi);
}
"""


class TestUpstreamDirection:
    def test_mobile_hosted_server_wired_hosted_client(self):
        # the mobile device runs the coordination machinery...
        mobile = build_server()
        stream = mobile.deploy_script(UPLINK_STREAM)
        scheduler = InlineScheduler(stream)

        # ...the wired proxy runs the thin reverse-processing side
        wired_proxy = MobiGateClient()

        # asymmetric link: the upstream direction is the narrow one
        clock = VirtualClock()
        uplink = WirelessLink(32_000, clock=clock)  # 32 Kb/s uplink

        report_lines = [f"sensor reading {i}: value={i * 7}" for i in range(50)]
        payload = "\n".join(report_lines).encode()
        stream.post(MimeMessage("text/plain", payload))
        scheduler.pump()
        [outgoing] = stream.collect()

        wire = serialize_message(outgoing)
        assert len(wire) < len(payload)  # compression pays on the weak uplink
        transmission = uplink.transmit(len(wire))
        assert not transmission.lost

        [delivered] = wired_proxy.receive(parse_message(wire))
        assert delivered.body == payload

    def test_same_machinery_both_directions(self):
        """One process can host both directions simultaneously."""
        node = build_server()
        down = node.deploy_script(
            UPLINK_STREAM.replace("uplink", "down"), stream="down"
        )
        up = node.deploy_script(UPLINK_STREAM.replace("uplink", "up"), stream="up")
        assert down.session != up.session
        for stream, text in [(down, b"downstream"), (up, b"upstream")]:
            scheduler = InlineScheduler(stream)
            stream.post(MimeMessage("text/plain", text * 40))
            scheduler.pump()
            [wire] = stream.collect()
            [out] = MobiGateClient().receive(wire)
            assert out.body == text * 40
