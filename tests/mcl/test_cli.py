"""Tests for the MCL command-line tool."""

import pytest

from repro.mcl.__main__ import main

GOOD = """
main stream pipe{
  streamlet a = new-streamlet (redirector);
  streamlet b = new-streamlet (encryptor);
  streamlet c = new-streamlet (communicator);
  connect (a.po, b.pi);
  connect (b.po, c.pi1);
}
"""

LOOPED = """
main stream loop{
  streamlet a, b = new-streamlet (redirector);
  connect (a.po, b.pi);
  connect (b.po, a.pi);
}
"""

BROKEN = "stream x{ connect (a.po, ; }"


@pytest.fixture
def write(tmp_path):
    def _write(source, name="script.mcl"):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    return _write


class TestCheck:
    def test_consistent_script(self, write, capsys):
        assert main(["check", write(GOOD)]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_violations_exit_1(self, write, capsys):
        assert main(["check", write(LOOPED)]) == 1
        assert "feedback-loop" in capsys.readouterr().out

    def test_compile_error_exit_2(self, write, capsys):
        assert main(["check", write(BROKEN)]) == 2
        assert "compile error" in capsys.readouterr().err

    def test_strict_mode_flags_dangling(self, write, capsys):
        source = """
main stream open{
  streamlet a, b = new-streamlet (redirector);
  connect (a.po, b.pi);
}
"""
        assert main(["check", write(source)]) == 0
        assert main(["check", "--strict", write(source)]) == 1

    def test_no_builtins(self, write, capsys):
        assert main(["check", "--no-builtins", write(GOOD)]) == 2
        assert "redirector" in capsys.readouterr().err

    def test_stream_selector(self, write, capsys):
        source = GOOD.replace("main stream pipe", "stream pipe") + "stream other{ }"
        assert main(["check", "--stream", "pipe", write(source)]) == 0
        out = capsys.readouterr().out
        assert "pipe" in out and "other" not in out

    def test_unknown_stream(self, write, capsys):
        assert main(["check", "--stream", "ghost", write(GOOD)]) == 2

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent/path.mcl"]) == 2


class TestJsonOutput:
    def test_json_consistent(self, write, capsys):
        import json

        assert main(["check", "--json", write(GOOD)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        [stream] = payload["streams"]
        assert stream["consistent"] is True
        assert stream["links"] == 2

    def test_json_violations(self, write, capsys):
        import json

        assert main(["check", "--json", write(LOOPED)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "violations"
        kinds = [v["kind"] for v in payload["streams"][0]["violations"]]
        assert "feedback-loop" in kinds

    def test_json_compile_error(self, write, capsys):
        import json

        assert main(["check", "--json", write(BROKEN)]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "compile-error"


class TestFormat:
    def test_formats_canonically(self, write, capsys):
        assert main(["format", write(GOOD)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("main stream pipe {")
        # formatted output must re-parse to the same AST
        from repro.mcl.parser import parse_script

        assert parse_script(out) == parse_script(GOOD)

    def test_parse_error(self, write, capsys):
        assert main(["format", write(BROKEN)]) == 2


class TestGraph:
    def test_edges_printed(self, write, capsys):
        assert main(["graph", write(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "a -> b" in out
        assert "b -> c" in out

    def test_dormant_listed(self, write, capsys):
        source = GOOD.replace(
            "connect (a.po, b.pi);",
            "streamlet spare = new-streamlet (redirector);\n  connect (a.po, b.pi);",
        )
        main(["graph", write(source)])
        assert "dormant: spare" in capsys.readouterr().out
