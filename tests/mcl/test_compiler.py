import pytest

from repro.errors import MclCompileError, MclNameError, MclTypeError
from repro.events import EventCatalog, EventCategory
from repro.mcl import astnodes as ast
from repro.mcl.compiler import DEFAULT_CHANNEL_DEF, MclCompiler, compile_script

DEFS = """
streamlet producer{
  port{ out po : text/richtext; }
}
streamlet consumer{
  port{ in pi : text/*; }
}
streamlet filter{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet imgsink{
  port{ in pi : image/gif; }
}
channel bigChan{
  port{ in cin : */*; out cout : */*; }
  attribute{ buffer = 1024; }
}
"""


def compile_one(body: str, defs: str = DEFS, stream: str = "s"):
    return compile_script(defs + f"stream {stream}{{ {body} }}").tables[stream]


class TestInstances:
    def test_instantiation(self):
        table = compile_one("streamlet a = new-streamlet (producer);")
        assert table.instances["a"].name == "producer"

    def test_multi_declaration(self):
        table = compile_one("streamlet a, b = new-streamlet (producer);")
        assert set(table.instances) == {"a", "b"}

    def test_unknown_definition(self):
        with pytest.raises(MclNameError):
            compile_one("streamlet a = new-streamlet (nonexistent);")

    def test_duplicate_instance_name(self):
        with pytest.raises(MclNameError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet a = new-streamlet (consumer);"
            )

    def test_channel_instance(self):
        table = compile_one("channel c = new-channel (bigChan);")
        assert table.channels["c"].definition.buffer_kb == 1024

    def test_name_collision_across_kinds(self):
        with pytest.raises(MclNameError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "channel a = new-channel (bigChan);"
            )

    def test_remove_streamlet(self):
        table = compile_one(
            "streamlet a = new-streamlet (producer); remove-streamlet (a);"
        )
        assert "a" not in table.instances

    def test_remove_connected_streamlet_rejected(self):
        with pytest.raises(MclCompileError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b = new-streamlet (consumer);"
                "connect (a.po, b.pi);"
                "remove-streamlet (a);"
            )

    def test_remove_used_channel_rejected(self):
        with pytest.raises(MclCompileError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b = new-streamlet (consumer);"
                "channel c = new-channel (bigChan);"
                "connect (a.po, b.pi, c);"
                "remove-channel (c);"
            )


class TestConnect:
    def test_auto_channel(self):
        table = compile_one(
            "streamlet a = new-streamlet (producer);"
            "streamlet b = new-streamlet (consumer);"
            "connect (a.po, b.pi);"
        )
        assert len(table.links) == 1
        link = table.links[0]
        assert table.channels[link.channel].auto
        assert table.channels[link.channel].definition == DEFAULT_CHANNEL_DEF
        assert str(link.mediatype) == "text/richtext"

    def test_explicit_channel(self):
        table = compile_one(
            "streamlet a = new-streamlet (producer);"
            "streamlet b = new-streamlet (consumer);"
            "channel c = new-channel (bigChan);"
            "connect (a.po, b.pi, c);"
        )
        assert table.links[0].channel == "c"

    def test_type_compatibility_subtype_ok(self):
        # text/richtext source into text/* sink: the 4.4.1 example
        table = compile_one(
            "streamlet a = new-streamlet (producer);"
            "streamlet b = new-streamlet (consumer);"
            "connect (a.po, b.pi);"
        )
        assert table.links

    def test_type_mismatch_rejected(self):
        with pytest.raises(MclTypeError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b = new-streamlet (imgsink);"
                "connect (a.po, b.pi);"
            )

    def test_direction_enforced(self):
        with pytest.raises(MclTypeError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b = new-streamlet (consumer);"
                "connect (b.pi, a.po);"
            )

    def test_unknown_port(self):
        with pytest.raises(MclTypeError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b = new-streamlet (consumer);"
                "connect (a.nothere, b.pi);"
            )

    def test_port_reuse_rejected(self):
        with pytest.raises(MclCompileError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b, b2 = new-streamlet (consumer);"
                "connect (a.po, b.pi);"
                "connect (a.po, b2.pi);"
            )

    def test_channel_reuse_rejected(self):
        with pytest.raises(MclCompileError):
            compile_one(
                "streamlet a, a2 = new-streamlet (producer);"
                "streamlet b, b2 = new-streamlet (consumer);"
                "channel c = new-channel (bigChan);"
                "connect (a.po, b.pi, c);"
                "connect (a2.po, b2.pi, c);"
            )

    def test_channel_as_endpoint_rejected(self):
        with pytest.raises(MclCompileError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "channel c = new-channel (bigChan);"
                "connect (a.po, c.cin);"
            )

    def test_disconnect_releases(self):
        table = compile_one(
            "streamlet a = new-streamlet (producer);"
            "streamlet b, b2 = new-streamlet (consumer);"
            "connect (a.po, b.pi);"
            "disconnect (a.po, b.pi);"
            "connect (a.po, b2.pi);"
        )
        assert len(table.links) == 1
        assert table.links[0].sink.instance == "b2"

    def test_disconnect_missing_link(self):
        with pytest.raises(MclCompileError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b = new-streamlet (consumer);"
                "disconnect (a.po, b.pi);"
            )

    def test_disconnectall(self):
        table = compile_one(
            "streamlet a = new-streamlet (producer);"
            "streamlet f = new-streamlet (filter);"
            "streamlet b = new-streamlet (consumer);"
            "connect (a.po, f.pi);"
            "connect (f.po, b.pi);"
            "disconnectall (f);"
        )
        assert table.links == []

    def test_insert_outside_when_rejected(self):
        with pytest.raises(MclCompileError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b = new-streamlet (consumer);"
                "streamlet f = new-streamlet (filter);"
                "insert (a.po, b.pi, f);"
            )


class TestEvents:
    def test_handler_stored_canonical(self):
        table = compile_one(
            "streamlet a = new-streamlet (producer);"
            "streamlet b = new-streamlet (consumer);"
            "connect (a.po, b.pi);"
            "when (LOW_GRAY) { disconnect (a.po, b.pi); }"
        )
        assert table.subscribed_events() == {"LOW_GRAYS"}

    def test_unknown_event_rejected(self):
        with pytest.raises(MclCompileError):
            compile_one("when (MARTIAN_INVASION) { }")

    def test_custom_event_via_catalog(self):
        catalog = EventCatalog()
        catalog.register("MARTIAN_INVASION", EventCategory.SOFTWARE_VARIATION)
        compiler = MclCompiler(catalog=catalog)
        compiled = compiler.compile(DEFS + "stream s{ when (MARTIAN_INVASION) { } }")
        assert "MARTIAN_INVASION" in compiled.tables["s"].handlers

    def test_duplicate_handler_rejected(self):
        with pytest.raises(MclCompileError):
            compile_one("when (END) { } when (END) { }")

    def test_handler_validates_types(self):
        with pytest.raises(MclTypeError):
            compile_one(
                "streamlet a = new-streamlet (producer);"
                "streamlet b = new-streamlet (imgsink);"
                "when (LOW_BANDWIDTH) { connect (a.po, b.pi); }"
            )

    def test_handler_local_instances(self):
        table = compile_one(
            "streamlet a = new-streamlet (producer);"
            "streamlet b = new-streamlet (consumer);"
            "connect (a.po, b.pi);"
            "when (LOW_BANDWIDTH) { streamlet f = new-streamlet (filter); "
            "insert (a.po, b.pi, f); }"
        )
        actions = table.handlers["LOW_BANDWIDTH"]
        assert isinstance(actions[0], ast.NewInstances)
        assert isinstance(actions[1], ast.Insert)

    def test_handler_unknown_name_rejected(self):
        with pytest.raises(MclNameError):
            compile_one("when (LOW_BANDWIDTH) { disconnectall (ghost); }")


class TestExposedPorts:
    def test_pipeline_exposes_ends(self):
        table = compile_one(
            "streamlet a = new-streamlet (filter);"
            "streamlet b = new-streamlet (filter);"
            "connect (a.po, b.pi);"
        )
        assert table.exposed_in == (ast.PortRef("a", "pi"),)
        assert table.exposed_out == (ast.PortRef("b", "po"),)

    def test_dormant_instances_not_exposed(self):
        table = compile_one(
            "streamlet a = new-streamlet (filter);"
            "streamlet b = new-streamlet (filter);"
            "streamlet spare = new-streamlet (filter);"
            "connect (a.po, b.pi);"
        )
        assert table.dormant_instances() == {"spare"}
        assert all(ref.instance != "spare" for ref in table.exposed_in + table.exposed_out)


class TestRecursiveComposition:
    COMPOSITE = DEFS + """
streamlet inner{
  port{ in pi : text/*; out po : text/plain; }
  attribute{ type = STATEFUL; library = "mcl/inner"; }
}
stream inner{
  streamlet f1 = new-streamlet (filter);
  streamlet f2 = new-streamlet (filter);
  connect (f1.po, f2.pi);
}
main stream outer{
  streamlet p = new-streamlet (producer);
  streamlet comp = new-streamlet (inner);
  streamlet c = new-streamlet (consumer);
  connect (p.po, comp.pi);
  connect (comp.po, c.pi);
}
"""

    def test_expansion_inlines_instances(self):
        table = compile_script(self.COMPOSITE).main_table()
        assert "comp$f1" in table.instances
        assert "comp$f2" in table.instances
        assert "comp" not in table.instances

    def test_expansion_rewires_links(self):
        table = compile_script(self.COMPOSITE).main_table()
        sinks = {str(l.sink) for l in table.links}
        sources = {str(l.source) for l in table.links}
        assert "comp$f1.pi" in sinks       # p.po -> comp$f1.pi
        assert "comp$f2.po" in sources     # comp$f2.po -> c.pi
        assert len(table.links) == 3

    def test_synthesized_interface(self):
        # no declared 'streamlet inner' interface: compiler derives one
        source = DEFS + """
stream box{
  streamlet f1 = new-streamlet (filter);
  streamlet f2 = new-streamlet (filter);
  connect (f1.po, f2.pi);
}
main stream outer{
  streamlet p = new-streamlet (producer);
  streamlet b = new-streamlet (box);
  connect (p.po, b.pi0);
}
"""
        table = compile_script(source).main_table()
        assert any(l.sink == ast.PortRef("b$f1", "pi") for l in table.links)

    def test_cycle_detection(self):
        source = """
stream a{ streamlet x = new-streamlet (b); }
stream b{ streamlet y = new-streamlet (a); }
"""
        with pytest.raises(MclCompileError, match="cycle"):
            compile_script(source)

    def test_self_recursion_rejected(self):
        source = "stream a{ streamlet x = new-streamlet (a); }"
        with pytest.raises(MclCompileError, match="cycle"):
            compile_script(source)

    def test_interface_arity_mismatch(self):
        source = DEFS + """
streamlet box{
  port{ in p1 : text/*; in p2 : text/*; out q : text/plain; }
}
stream box{
  streamlet f1 = new-streamlet (filter);
  streamlet f2 = new-streamlet (filter);
  connect (f1.po, f2.pi);
}
main stream outer{
  streamlet b = new-streamlet (box);
}
"""
        with pytest.raises(MclCompileError, match="exposes"):
            compile_script(source)

    def test_child_handlers_hoisted(self):
        source = DEFS + """
stream box{
  streamlet f1 = new-streamlet (filter);
  streamlet f2 = new-streamlet (filter);
  connect (f1.po, f2.pi);
  when (LOW_BANDWIDTH) { disconnect (f1.po, f2.pi); }
}
main stream outer{
  streamlet b = new-streamlet (box);
}
"""
        table = compile_script(source).main_table()
        actions = table.handlers["LOW_BANDWIDTH"]
        assert actions[0] == ast.Disconnect(
            ast.PortRef("b$f1", "po"), ast.PortRef("b$f2", "pi")
        )


class TestScriptLevel:
    def test_duplicate_streamlet_defs(self):
        with pytest.raises(MclNameError):
            compile_script(
                "streamlet x{ port{ in a : text/*; } }"
                "streamlet x{ port{ in a : text/*; } }"
            )

    def test_main_designation(self):
        compiled = compile_script("main stream m{ } stream other{ }")
        assert compiled.main == "m"
        assert set(compiled.tables) == {"m", "other"}

    def test_no_main(self):
        compiled = compile_script("stream a{ } stream b{ }")
        assert compiled.main is None
        with pytest.raises(KeyError):
            compiled.main_table()

    def test_extra_definitions_from_directory(self):
        defs = compile_script(DEFS).tables  # parse defs for reuse
        del defs
        from repro.mcl.parser import parse_script

        parsed = parse_script(DEFS)
        compiler = MclCompiler(
            extra_streamlets={d.name: d for d in parsed.streamlets},
            extra_channels={d.name: d for d in parsed.channels},
        )
        compiled = compiler.compile(
            "stream s{ streamlet a = new-streamlet (producer); "
            "streamlet b = new-streamlet (consumer); connect (a.po, b.pi); }"
        )
        assert len(compiled.tables["s"].links) == 1
