import pytest

from repro.errors import MclLexError
from repro.mcl.lexer import tokenize
from repro.mcl.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty(self):
        assert kinds("") == [TokenKind.EOF]

    def test_punctuation(self):
        assert kinds("{}();:,.=*/")[:-1] == [
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.SEMI,
            TokenKind.COLON,
            TokenKind.COMMA,
            TokenKind.DOT,
            TokenKind.EQUALS,
            TokenKind.STAR,
            TokenKind.SLASH,
        ]

    def test_identifiers(self):
        assert texts("switch img_down_sample s1") == ["switch", "img_down_sample", "s1"]

    def test_hyphenated_keyword_is_one_token(self):
        toks = tokenize("new-streamlet")
        assert toks[0].text == "new-streamlet"
        assert toks[0].kind is TokenKind.IDENT

    def test_media_type_tokens(self):
        assert texts("multipart/mixed") == ["multipart", "/", "mixed"]

    def test_octet_stream_hyphen(self):
        assert texts("application/octet-stream") == ["application", "/", "octet-stream"]

    def test_numbers(self):
        toks = tokenize("1024 3.5")
        assert toks[0].kind is TokenKind.NUMBER and toks[0].text == "1024"
        assert toks[1].text == "3.5"

    def test_malformed_number(self):
        with pytest.raises(MclLexError):
            tokenize("1.2.3")

    def test_string(self):
        toks = tokenize('"general/switch"')
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].text == "general/switch"

    def test_string_escapes(self):
        assert tokenize(r'"a\"b\n"')[0].text == 'a"b\n'

    def test_unterminated_string(self):
        with pytest.raises(MclLexError):
            tokenize('"abc')

    def test_string_newline_rejected(self):
        with pytest.raises(MclLexError):
            tokenize('"ab\ncd"')

    def test_unexpected_character(self):
        with pytest.raises(MclLexError):
            tokenize("@")


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_slash_star_is_wildcard_not_comment(self):
        # '/*' must lex as SLASH STAR so 'text/*' media types work
        assert texts("text/*") == ["text", "/", "*"]

    def test_slash_alone(self):
        assert kinds("/")[0] is TokenKind.SLASH


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].column == 3

    def test_error_carries_position(self):
        with pytest.raises(MclLexError) as exc:
            tokenize("ok\n  @")
        assert exc.value.line == 2
