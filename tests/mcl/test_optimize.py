"""The post-compile fusion planner: groups, elided channels, diagnostics."""

from repro.mcl.compiler import compile_script
from repro.mcl.optimize import FusedGroup, FusionPlan, optimize

DEFS = """
streamlet stage{
  port{ in pi : */*; out po : */*; }
}
streamlet splitter{
  port{ in pi : */*; out po1 : */*; out po2 : */*; }
}
channel syncChan{
  port{ in cin : */*; out cout : */*; }
  attribute{ type = SYNC; buffer = 0; }
}
channel asyncChan{
  port{ in cin : */*; out cout : */*; }
  attribute{ type = ASYNC; buffer = 64; }
}
"""


def table_of(body: str):
    return compile_script(DEFS + f"stream s{{ {body} }}").tables["s"]


def sync_chain(n: int) -> str:
    names = [f"n{i}" for i in range(n)]
    chans = [f"c{i}" for i in range(n - 1)]
    body = (
        f"streamlet {', '.join(names)} = new-streamlet (stage);"
        f"channel {', '.join(chans)} = new-channel (syncChan);"
    )
    for i, (a, b) in enumerate(zip(names, names[1:])):
        body += f"connect ({a}.po, {b}.pi, c{i});"
    return body


class TestOptimize:
    def test_plans_one_group_over_a_sync_chain(self):
        plan = optimize(table_of(sync_chain(4)))
        assert isinstance(plan, FusionPlan)
        assert plan.stream_name == "s"
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.members == ("n0", "n1", "n2", "n3")
        assert group.head == "n0" and group.tail == "n3"
        assert len(group) == 4
        assert group.elided_channels == ("c0", "c1", "c2")
        assert plan.elided_hop_count == 3
        assert plan.fused_instances == {"n0", "n1", "n2", "n3"}
        assert plan.barred == {}

    def test_group_of_maps_members_and_outsiders(self):
        plan = optimize(table_of(sync_chain(3)))
        group = plan.group_of("n1")
        assert isinstance(group, FusedGroup)
        assert "n1" in group.members
        assert plan.group_of("nope") is None

    def test_async_table_plans_nothing(self):
        plan = optimize(table_of(
            "streamlet a, b = new-streamlet (stage);"
            "connect (a.po, b.pi);"
        ))
        assert plan.groups == ()
        assert plan.elided_hop_count == 0
        assert plan.fused_instances == frozenset()

    def test_extracted_member_is_barred_with_a_reason(self):
        plan = optimize(table_of(
            sync_chain(3) + "when (LOW_BANDWIDTH) { remove (n1); }"
        ))
        assert plan.groups == ()
        assert plan.barred["n1"].startswith("optional")

    def test_fan_out_is_barred_with_a_reason(self):
        plan = optimize(table_of(
            "streamlet sp = new-streamlet (splitter);"
            "streamlet a, b = new-streamlet (stage);"
            "channel c0, c1 = new-channel (syncChan);"
            "connect (sp.po1, a.pi, c0);"
            "connect (sp.po2, b.pi, c1);"
        ))
        assert plan.groups == ()
        assert plan.barred["sp"].startswith("fan")

    def test_async_interruption_yields_two_groups(self):
        plan = optimize(table_of(
            "streamlet n0, n1, n2, n3 = new-streamlet (stage);"
            "channel c0, c2 = new-channel (syncChan);"
            "channel c1 = new-channel (asyncChan);"
            "connect (n0.po, n1.pi, c0);"
            "connect (n1.po, n2.pi, c1);"
            "connect (n2.po, n3.pi, c2);"
        ))
        assert tuple(g.members for g in plan.groups) == (("n0", "n1"), ("n2", "n3"))
        assert [g.elided_channels for g in plan.groups] == [("c0",), ("c2",)]
