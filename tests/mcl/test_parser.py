import pytest

from repro.errors import MclParseError
from repro.mcl import astnodes as ast
from repro.mcl.parser import parse_script
from repro.mime.mediatype import MediaType

SWITCH = """
streamlet switch{
  port{
    in pi : multipart/mixed;
    out po1 : image/gif;
    out po2 : application/postscript;
  }
  attribute{
    type = STATELESS;
    library = "general/switch";
    description = "divide incoming messages by semantic type";
  }
}
"""

CHANNEL = """
channel largeBufferChan{
  port{
    in cin : image/*;
    out cout : image/*;
  }
  attribute{
    type = ASYNC;
    category = BK;
    buffer = 1024;
  }
}
"""

STREAM = """
stream streamApp{
  streamlet s1 = new-streamlet (switch);
  streamlet s2 = new-streamlet (img_down_sample);
  channel c1, c2 = new-channel (largeBufferChan);
  connect (s1.po1, s2.pi, c1);
  connect (s1.po2, s2.pi2);
  when (LOW_ENERGY){
    connect (s2.po, s1.pi);
  }
}
"""


class TestStreamletDef:
    def test_parse(self):
        script = parse_script(SWITCH)
        d = script.streamlet("switch")
        assert d is not None
        assert d.kind is ast.StreamletKind.STATELESS
        assert d.library == "general/switch"
        assert [p.name for p in d.ports] == ["pi", "po1", "po2"]
        assert d.port("pi").mediatype == MediaType.parse("multipart/mixed")

    def test_default_attributes(self):
        script = parse_script("streamlet x{ port{ in a : text/*; } }")
        d = script.streamlet("x")
        assert d.kind is ast.StreamletKind.STATELESS
        assert d.library == ""

    def test_stateful(self):
        script = parse_script(
            'streamlet x{ port{ in a : text/*; } attribute{ type = STATEFUL; } }'
        )
        assert script.streamlet("x").kind is ast.StreamletKind.STATEFUL

    def test_extension_attributes(self):
        script = parse_script(
            'streamlet x{ port{ in a : text/*; } '
            'attribute{ excludes = "y, z"; requires = "w"; after = "v"; } }'
        )
        d = script.streamlet("x")
        assert d.excludes == ("y", "z")
        assert d.requires == ("w",)
        assert d.after == ("v",)

    def test_bad_type_attr(self):
        with pytest.raises(MclParseError):
            parse_script("streamlet x{ port{ in a : text/*; } attribute{ type = WEIRD; } }")

    def test_unknown_attr(self):
        with pytest.raises(MclParseError):
            parse_script("streamlet x{ port{ in a : text/*; } attribute{ color = red; } }")

    def test_duplicate_port(self):
        with pytest.raises(MclParseError):
            parse_script("streamlet x{ port{ in a : text/*; out a : text/*; } }")

    def test_empty_port_block(self):
        with pytest.raises(MclParseError):
            parse_script("streamlet x{ port{ } }")

    def test_bad_direction(self):
        with pytest.raises(MclParseError):
            parse_script("streamlet x{ port{ inout a : text/*; } }")

    def test_wildcard_port_type(self):
        script = parse_script("streamlet x{ port{ in a : */*; out b : text; } }")
        d = script.streamlet("x")
        assert d.port("a").mediatype == MediaType.parse("*/*")
        assert d.port("b").mediatype == MediaType.parse("text/*")


class TestChannelDef:
    def test_parse(self):
        d = parse_script(CHANNEL).channel("largeBufferChan")
        assert d.sync is ast.ChannelSync.ASYNC
        assert d.category is ast.ChannelCategory.BK
        assert d.buffer_kb == 1024

    def test_defaults(self):
        d = parse_script(
            "channel c{ port{ in a : */*; out b : */*; } }"
        ).channel("c")
        assert d.sync is ast.ChannelSync.ASYNC
        assert d.category is ast.ChannelCategory.BK
        assert d.buffer_kb == 100

    def test_sync_needs_zero_buffer(self):
        with pytest.raises(MclParseError):
            parse_script(
                "channel c{ port{ in a : */*; out b : */*; } "
                "attribute{ type = SYNC; buffer = 10; } }"
            )

    def test_sync_zero_buffer_ok(self):
        d = parse_script(
            "channel c{ port{ in a : */*; out b : */*; } "
            "attribute{ type = SYNC; buffer = 0; } }"
        ).channel("c")
        assert d.sync is ast.ChannelSync.SYNC

    def test_two_in_ports_rejected(self):
        with pytest.raises(MclParseError):
            parse_script("channel c{ port{ in a : */*; in b : */*; } }")

    def test_all_categories(self):
        for cat in ["S", "BB", "BK", "KB", "KK"]:
            d = parse_script(
                f"channel c{{ port{{ in a : */*; out b : */*; }} "
                f"attribute{{ category = {cat}; }} }}"
            ).channel("c")
            assert d.category.value == cat

    def test_bad_category(self):
        with pytest.raises(MclParseError):
            parse_script(
                "channel c{ port{ in a : */*; out b : */*; } attribute{ category = XX; } }"
            )


class TestStreamDef:
    def test_parse(self):
        stream = parse_script(STREAM).stream("streamApp")
        assert stream is not None
        decls = [s for s in stream.body if isinstance(s, ast.NewInstances)]
        assert decls[0] == ast.NewInstances("streamlet", ("s1",), "switch")
        assert decls[2] == ast.NewInstances("channel", ("c1", "c2"), "largeBufferChan")

    def test_connect_with_channel(self):
        stream = parse_script(STREAM).stream("streamApp")
        connects = [s for s in stream.body if isinstance(s, ast.Connect)]
        assert connects[0] == ast.Connect(
            ast.PortRef("s1", "po1"), ast.PortRef("s2", "pi"), "c1"
        )
        assert connects[1].channel is None

    def test_when_block(self):
        stream = parse_script(STREAM).stream("streamApp")
        whens = [s for s in stream.body if isinstance(s, ast.When)]
        assert len(whens) == 1
        assert whens[0].event == "LOW_ENERGY"
        assert isinstance(whens[0].actions[0], ast.Connect)

    def test_main_stream(self):
        script = parse_script("main stream m{ connect (a.o, b.i); } stream n{ }")
        assert script.main_stream().name == "m"

    def test_single_stream_is_default_main(self):
        script = parse_script("stream only{ }")
        assert script.main_stream().name == "only"

    def test_two_streams_no_main(self):
        script = parse_script("stream a{ } stream b{ }")
        assert script.main_stream() is None

    def test_multiple_mains_rejected(self):
        with pytest.raises(MclParseError):
            parse_script("main stream a{ } main stream b{ }")

    def test_new_channel_with_space_spelling(self):
        # Figure 4-8 writes "new channel (largeBufferChan)"
        stream = parse_script(
            "stream s{ channel c1 = new channel (largeBufferChan); }"
        ).stream("s")
        assert stream.body[0] == ast.NewInstances("channel", ("c1",), "largeBufferChan")

    def test_mismatched_constructor(self):
        with pytest.raises(MclParseError):
            parse_script("stream s{ streamlet a = new-channel (x); }")

    def test_disconnect(self):
        stream = parse_script("stream s{ disconnect (a.o, b.i); }").stream("s")
        assert stream.body[0] == ast.Disconnect(ast.PortRef("a", "o"), ast.PortRef("b", "i"))

    def test_disconnectall(self):
        stream = parse_script("stream s{ disconnectall (a); }").stream("s")
        assert stream.body[0] == ast.DisconnectAll("a")

    def test_insert_replace_remove(self):
        stream = parse_script(
            "stream s{ when (LOW_BANDWIDTH) { insert (a.o, b.i, c); replace (c, d); "
            "remove-streamlet (d); remove-channel (ch); } }"
        ).stream("s")
        actions = stream.body[0].actions
        assert actions[0] == ast.Insert(ast.PortRef("a", "o"), ast.PortRef("b", "i"), "c")
        assert actions[1] == ast.Replace("c", "d")
        assert actions[2] == ast.RemoveInstance("streamlet", "d")
        assert actions[3] == ast.RemoveInstance("channel", "ch")

    def test_nested_when_rejected(self):
        with pytest.raises(MclParseError):
            parse_script("stream s{ when (END) { when (PAUSE) { } } }")

    def test_duplicate_instance_names_in_decl(self):
        with pytest.raises(MclParseError):
            parse_script("stream s{ streamlet a, a = new-streamlet (x); }")

    def test_missing_semicolon(self):
        with pytest.raises(MclParseError):
            parse_script("stream s{ connect (a.o, b.i) }")

    def test_error_reports_line(self):
        with pytest.raises(MclParseError) as exc:
            parse_script("stream s{\n  bogus (a.o);\n}")
        assert exc.value.line == 2


class TestFullExample:
    def test_thesis_section_4_3(self):
        # the composition script of Figure 4-8, abridged types
        source = SWITCH + CHANNEL + STREAM
        script = parse_script(source)
        assert len(script.streamlets) == 1
        assert len(script.channels) == 1
        assert len(script.streams) == 1
