from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcl import astnodes as ast
from repro.mcl.parser import parse_script
from repro.mcl.pretty import format_script
from repro.mime.mediatype import MediaType

# ---------------------------------------------------------------------------
# AST strategies
# ---------------------------------------------------------------------------

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s
    not in {
        "streamlet", "channel", "stream", "main", "port", "attribute",
        "in", "out", "when", "connect", "disconnect", "disconnectall",
        "insert", "remove", "replace", "new",
    }
)

_mediatype = st.sampled_from(
    [MediaType.parse(t) for t in
     ["text/plain", "text/richtext", "text/*", "image/gif", "image/*",
      "*/*", "multipart/mixed", "application/octet-stream"]]
)

_port = st.builds(
    ast.PortDecl,
    direction=st.sampled_from(list(ast.PortDirection)),
    name=_ident,
    mediatype=_mediatype,
)


def _unique_ports(ports):
    seen = set()
    out = []
    for p in ports:
        if p.name not in seen:
            seen.add(p.name)
            out.append(p)
    return tuple(out)


_streamlet_def = st.builds(
    ast.StreamletDef,
    name=_ident,
    ports=st.lists(_port, min_size=1, max_size=4).map(_unique_ports),
    kind=st.sampled_from(list(ast.StreamletKind)),
    library=st.sampled_from(["", "general/x", "mcl/box"]),
    description=st.sampled_from(["", "a description, with punctuation."]),
    excludes=st.lists(_ident, max_size=2, unique=True).map(tuple),
    requires=st.lists(_ident, max_size=2, unique=True).map(tuple),
    after=st.lists(_ident, max_size=2, unique=True).map(tuple),
)

_channel_def = st.builds(
    lambda name, it, ot, sync, category, buffer_kb: ast.ChannelDef(
        name=name,
        in_port=ast.PortDecl(ast.PortDirection.IN, "cin", it),
        out_port=ast.PortDecl(ast.PortDirection.OUT, "cout", ot),
        sync=sync,
        category=category,
        buffer_kb=0 if sync is ast.ChannelSync.SYNC else buffer_kb,
    ),
    name=_ident,
    it=_mediatype,
    ot=_mediatype,
    sync=st.sampled_from(list(ast.ChannelSync)),
    category=st.sampled_from(list(ast.ChannelCategory)),
    buffer_kb=st.integers(min_value=1, max_value=4096),
)

_portref = st.builds(ast.PortRef, instance=_ident, port=_ident)

_action = st.one_of(
    st.builds(ast.Connect, source=_portref, sink=_portref,
              channel=st.one_of(st.none(), _ident)),
    st.builds(ast.Disconnect, source=_portref, sink=_portref),
    st.builds(ast.DisconnectAll, instance=_ident),
    st.builds(ast.Insert, source=_portref, sink=_portref, instance=_ident),
    st.builds(ast.Replace, old=_ident, new=_ident),
    st.builds(ast.RemoveInstance,
              kind=st.sampled_from(["streamlet", "channel", "extract"]),
              name=_ident),
    st.builds(ast.NewInstances, kind=st.sampled_from(["streamlet", "channel"]),
              names=st.lists(_ident, min_size=1, max_size=3, unique=True).map(tuple),
              definition=_ident),
)

_statement = st.one_of(
    _action,
    st.builds(ast.When,
              event=st.sampled_from(["LOW_BANDWIDTH", "LOW_ENERGY", "END", "PAUSE"]),
              actions=st.lists(_action, max_size=3).map(tuple)),
)

_stream_def = st.builds(
    ast.StreamDef,
    name=_ident,
    body=st.lists(_statement, max_size=6).map(tuple),
    is_main=st.just(False),
)


def _unique_names(defs):
    seen = set()
    out = []
    for d in defs:
        if d.name not in seen:
            seen.add(d.name)
            out.append(d)
    return tuple(out)


_script = st.builds(
    ast.Script,
    streamlets=st.lists(_streamlet_def, max_size=3).map(_unique_names),
    channels=st.lists(_channel_def, max_size=2).map(_unique_names),
    streams=st.lists(_stream_def, max_size=2).map(_unique_names),
)


# ---------------------------------------------------------------------------
# tests
# ---------------------------------------------------------------------------


class TestFormatKnown:
    def test_streamlet_block(self):
        script = parse_script(
            'streamlet s{ port{ in pi : text/*; out po : text/plain; } '
            'attribute{ type = STATEFUL; library = "x/y"; } }'
        )
        text = format_script(script)
        assert "streamlet s {" in text
        assert "in pi : text/*;" in text
        assert "type = STATEFUL;" in text
        assert 'library = "x/y";' in text

    def test_when_block_nesting(self):
        script = parse_script(
            "stream s{ when (END) { disconnectall (a); } }"
        )
        text = format_script(script)
        assert "  when (END) {" in text
        assert "    disconnectall (a);" in text

    def test_empty_script(self):
        assert format_script(ast.Script()) == ""

    def test_main_keyword_preserved(self):
        script = parse_script("main stream m{ }")
        assert format_script(script).startswith("main stream m {")


@settings(deadline=None, max_examples=200)
@given(_script)
def test_roundtrip_property(script):
    assert parse_script(format_script(script)) == script
