import pytest

from repro.errors import HeaderError
from repro.mime.headers import CONTENT_SESSION, CONTENT_TYPE, PEER_STACK, HeaderMap
from repro.mime.mediatype import TEXT_PLAIN


class TestBasicMapping:
    def test_set_get(self):
        h = HeaderMap()
        h.set("Content-Type", "text/plain")
        assert h.get("Content-Type") == "text/plain"

    def test_case_insensitive(self):
        h = HeaderMap()
        h.set("Content-Type", "text/plain")
        assert h.get("content-type") == "text/plain"
        assert "CONTENT-TYPE" in h

    def test_set_replaces(self):
        h = HeaderMap()
        h.set("X", "1")
        h.set("x", "2")
        assert h.get("X") == "2"
        assert len(h) == 1

    def test_get_default(self):
        assert HeaderMap().get("Missing", "d") == "d"

    def test_require_missing_raises(self):
        with pytest.raises(HeaderError):
            HeaderMap().require("Nope")

    def test_remove(self):
        h = HeaderMap({"A": "1"})
        assert h.remove("a")
        assert not h.remove("a")
        assert len(h) == 0

    def test_init_dict(self):
        h = HeaderMap({"A": "1", "B": "2"})
        assert h.get("a") == "1" and h.get("b") == "2"

    def test_illegal_name_rejected(self):
        h = HeaderMap()
        for bad in ["", "Bad:Name", "Bad\nName"]:
            with pytest.raises(HeaderError):
                h.set(bad, "v")

    def test_newline_in_value_rejected(self):
        with pytest.raises(HeaderError):
            HeaderMap().set("A", "x\ny")

    def test_copy_is_independent(self):
        h = HeaderMap({"A": "1"})
        c = h.copy()
        c.set("A", "2")
        assert h.get("A") == "1"

    def test_equality_ignores_display_case(self):
        a = HeaderMap({"Content-Type": "x"})
        b = HeaderMap({"content-type": "x"})
        assert a == b


class TestTypedAccessors:
    def test_content_type_roundtrip(self):
        h = HeaderMap()
        h.content_type = TEXT_PLAIN
        assert h.content_type == TEXT_PLAIN
        assert h.get(CONTENT_TYPE) == "text/plain"

    def test_content_type_missing(self):
        assert HeaderMap().content_type is None

    def test_session(self):
        h = HeaderMap()
        h.session = "sess-9"
        assert h.session == "sess-9"
        assert h.get(CONTENT_SESSION) == "sess-9"


class TestPeerStack:
    def test_push_pop_lifo(self):
        h = HeaderMap()
        h.push_peer("compressor")
        h.push_peer("encryptor")
        assert h.pop_peer() == "encryptor"
        assert h.pop_peer() == "compressor"
        assert h.pop_peer() is None

    def test_stack_listing(self):
        h = HeaderMap()
        h.push_peer("a")
        h.push_peer("b")
        assert h.peer_stack() == ["a", "b"]

    def test_empty_stack(self):
        assert HeaderMap().peer_stack() == []

    def test_pop_removes_header_when_empty(self):
        h = HeaderMap()
        h.push_peer("only")
        h.pop_peer()
        assert PEER_STACK not in h

    def test_illegal_peer_id(self):
        h = HeaderMap()
        for bad in ["", "a,b", "  "]:
            with pytest.raises(HeaderError):
                h.push_peer(bad)


class TestWireFormat:
    def test_format_parse_roundtrip(self):
        h = HeaderMap()
        h.set("Content-Type", "text/plain; charset=utf-8")
        h.set("Content-Session", "sess-1")
        h.push_peer("decomp")
        parsed = HeaderMap.parse(h.format())
        assert parsed == h

    def test_parse_skips_blank_lines(self):
        parsed = HeaderMap.parse("A: 1\n\nB: 2\n")
        assert parsed.get("A") == "1" and parsed.get("B") == "2"

    def test_parse_missing_colon_raises(self):
        with pytest.raises(HeaderError):
            HeaderMap.parse("NoColonHere")

    def test_format_order_preserved(self):
        h = HeaderMap()
        h.set("Z", "1")
        h.set("A", "2")
        assert h.format().splitlines() == ["Z: 1", "A: 2"]


class TestStreamEpoch:
    """The reconfiguration extension: epochs ride on Content-Session."""

    def test_no_session_no_epoch(self):
        h = HeaderMap()
        assert h.epoch is None
        assert h.session is None

    def test_session_without_epoch(self):
        h = HeaderMap()
        h.set(CONTENT_SESSION, "sess-42")
        assert h.session == "sess-42"
        assert h.epoch is None

    def test_set_epoch_and_read_back(self):
        h = HeaderMap()
        h.set(CONTENT_SESSION, "sess-42")
        h.set_epoch(3)
        assert h.get(CONTENT_SESSION) == "sess-42;epoch=3"
        assert h.session == "sess-42"  # base id unchanged for old readers
        assert h.epoch == 3

    def test_set_epoch_replaces_prior(self):
        h = HeaderMap()
        h.set(CONTENT_SESSION, "sess-1")
        h.set_epoch(1)
        h.set_epoch(2)
        assert h.get(CONTENT_SESSION) == "sess-1;epoch=2"
        assert h.epoch == 2

    def test_epoch_survives_the_wire(self):
        h = HeaderMap()
        h.set(CONTENT_SESSION, "sess-7")
        h.set_epoch(5)
        parsed = HeaderMap.parse(h.format())
        assert parsed.epoch == 5
        assert parsed.session == "sess-7"

    def test_malformed_epoch_raises(self):
        h = HeaderMap()
        h.set(CONTENT_SESSION, "sess-1;epoch=banana")
        with pytest.raises(HeaderError):
            h.epoch

    def test_negative_epoch_rejected(self):
        h = HeaderMap()
        h.set(CONTENT_SESSION, "sess-1")
        with pytest.raises(HeaderError):
            h.set_epoch(-1)

    def test_set_epoch_without_session_rejected(self):
        with pytest.raises(HeaderError):
            HeaderMap().set_epoch(1)
