import pytest

from repro.errors import MediaTypeParseError
from repro.mime.mediatype import (
    ANY,
    IMAGE,
    IMAGE_GIF,
    TEXT,
    TEXT_PLAIN,
    TEXT_RICHTEXT,
    MediaType,
)


class TestParse:
    def test_simple(self):
        mt = MediaType.parse("text/plain")
        assert mt.maintype == "text"
        assert mt.subtype == "plain"
        assert mt.params == {}

    def test_case_insensitive(self):
        assert MediaType.parse("TEXT/Plain") == TEXT_PLAIN

    def test_whitespace_tolerated(self):
        assert MediaType.parse("  text/plain  ") == TEXT_PLAIN

    def test_bare_name_becomes_wildcard(self):
        assert MediaType.parse("text") == TEXT

    def test_full_wildcard(self):
        assert MediaType.parse("*/*") == ANY

    def test_subtype_wildcard(self):
        assert MediaType.parse("image/*") == IMAGE

    def test_params(self):
        mt = MediaType.parse("text/plain; charset=utf-8")
        assert mt.param("charset") == "utf-8"

    def test_quoted_param(self):
        mt = MediaType.parse('text/plain; name="hello world"')
        assert mt.param("name") == "hello world"

    def test_multiple_params(self):
        mt = MediaType.parse("multipart/mixed; boundary=xyz; charset=ascii")
        assert mt.param("boundary") == "xyz"
        assert mt.param("charset") == "ascii"

    def test_param_names_case_insensitive(self):
        assert MediaType.parse("text/plain; Charset=utf-8").param("charset") == "utf-8"

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "a/b/c", "/plain", "text/", "te xt/plain", "*/plain",
         "text/plain; =x", "text/plain; charset", "text/pl@in"],
    )
    def test_rejects(self, bad):
        with pytest.raises(MediaTypeParseError):
            MediaType.parse(bad)

    def test_non_string_rejected(self):
        with pytest.raises(MediaTypeParseError):
            MediaType.parse(None)  # type: ignore[arg-type]


class TestFormatting:
    def test_str_roundtrip(self):
        for text in ["text/plain", "image/*", "*/*", "text/plain; charset=utf-8"]:
            assert MediaType.parse(str(MediaType.parse(text))) == MediaType.parse(text)

    def test_essence_strips_params(self):
        assert MediaType.parse("text/plain; charset=utf-8").essence == "text/plain"

    def test_without_params(self):
        assert MediaType.parse("text/plain; a=b").without_params() == TEXT_PLAIN

    def test_with_params(self):
        mt = TEXT_PLAIN.with_params(charset="ascii")
        assert mt.param("charset") == "ascii"
        assert mt.essence == "text/plain"


class TestMatching:
    def test_exact(self):
        assert TEXT_PLAIN.matches(TEXT_PLAIN)

    def test_subtype_wildcard(self):
        assert TEXT_PLAIN.matches(TEXT)
        assert TEXT_RICHTEXT.matches(TEXT)

    def test_full_wildcard(self):
        assert IMAGE_GIF.matches(ANY)
        assert TEXT.matches(ANY)

    def test_wildcard_does_not_match_concrete(self):
        assert not TEXT.matches(TEXT_PLAIN)
        assert not ANY.matches(TEXT)

    def test_cross_type_no_match(self):
        assert not IMAGE_GIF.matches(TEXT)

    def test_param_constraint(self):
        pattern = MediaType.parse("text/plain; charset=utf-8")
        assert MediaType.parse("text/plain; charset=utf-8; x=1").matches(pattern)
        assert not TEXT_PLAIN.matches(pattern)
        assert not MediaType.parse("text/plain; charset=ascii").matches(pattern)


class TestEqualityHash:
    def test_param_order_irrelevant(self):
        a = MediaType.parse("text/plain; a=1; b=2")
        b = MediaType.parse("text/plain; b=2; a=1")
        assert a == b
        assert hash(a) == hash(b)

    def test_not_equal_other_type(self):
        assert TEXT_PLAIN != "text/plain"

    def test_sortable(self):
        types = [TEXT_PLAIN, ANY, IMAGE_GIF]
        assert sorted(types)[0] == ANY
