import numpy as np
import pytest

from repro.errors import MimeError
from repro.mime.mediatype import IMAGE_GIF, MULTIPART_MIXED, TEXT_PLAIN
from repro.mime.message import MimeMessage, clone_payload, payload_size


class TestConstruction:
    def test_string_content_type(self):
        msg = MimeMessage("text/plain", b"hi")
        assert msg.content_type == TEXT_PLAIN

    def test_session_kwarg(self):
        msg = MimeMessage("text/plain", b"", session="sess-3")
        assert msg.session == "sess-3"

    def test_bad_payload_rejected_eagerly(self):
        with pytest.raises(MimeError):
            MimeMessage("text/plain", object())


class TestPayloadSize:
    def test_none(self):
        assert payload_size(None) == 0

    def test_bytes(self):
        assert payload_size(b"abcd") == 4

    def test_str_utf8(self):
        assert payload_size("héllo") == len("héllo".encode()) == 6

    def test_ndarray(self):
        arr = np.zeros((4, 4), dtype=np.uint8)
        assert payload_size(arr) == 16

    def test_unsupported(self):
        with pytest.raises(MimeError):
            payload_size(3.14)


class TestSizes:
    def test_body_size(self):
        assert MimeMessage("text/plain", b"12345").body_size() == 5

    def test_total_size_includes_headers(self):
        msg = MimeMessage("text/plain", b"12345")
        assert msg.total_size() == msg.header_size() + 2 + 5

    def test_stamp_length(self):
        msg = MimeMessage("text/plain", b"123")
        msg.stamp_length()
        assert msg.headers.get("Content-Length") == "3"


class TestMutation:
    def test_set_body_retypes(self):
        msg = MimeMessage("image/gif", b"gifdata")
        msg.set_body(b"jpegdata", "image/jpeg")
        assert msg.content_type.essence == "image/jpeg"
        assert msg.body == b"jpegdata"

    def test_set_body_keeps_type(self):
        msg = MimeMessage("text/plain", b"a")
        msg.set_body(b"bb")
        assert msg.content_type == TEXT_PLAIN

    def test_set_body_validates(self):
        msg = MimeMessage("text/plain", b"")
        with pytest.raises(MimeError):
            msg.set_body({"not": "supported"})


class TestClone:
    def test_clone_headers_independent(self):
        msg = MimeMessage("text/plain", b"x", session="s1")
        copy = msg.clone()
        copy.headers.session = "s2"
        assert msg.session == "s1"

    def test_clone_ndarray_independent(self):
        arr = np.ones(8, dtype=np.uint8)
        msg = MimeMessage("image/gif", arr)
        copy = msg.clone()
        copy.body[0] = 0
        assert msg.body[0] == 1

    def test_clone_bytes_shared_ok(self):
        msg = MimeMessage("text/plain", b"imm")
        assert msg.clone().body == b"imm"

    def test_clone_payload_bytearray(self):
        ba = bytearray(b"ab")
        copy = clone_payload(ba)
        copy[0] = 0
        assert ba == b"ab"

    def test_clone_payload_memoryview(self):
        assert clone_payload(memoryview(b"xy")) == b"xy"


class TestMultipart:
    def test_build(self):
        parts = [MimeMessage("text/plain", b"t"), MimeMessage("image/gif", b"i")]
        msg = MimeMessage.multipart(parts, session="s")
        assert msg.content_type == MULTIPART_MIXED
        assert msg.is_multipart
        assert len(msg.parts) == 2

    def test_size_sums_parts(self):
        parts = [MimeMessage("text/plain", b"abc"), MimeMessage("image/gif", b"defg")]
        msg = MimeMessage.multipart(parts)
        assert msg.body_size() == sum(p.total_size() for p in parts)

    def test_parts_on_scalar_raises(self):
        with pytest.raises(MimeError):
            MimeMessage("text/plain", b"x").parts

    def test_non_message_part_rejected(self):
        with pytest.raises(MimeError):
            MimeMessage.multipart([b"raw"])  # type: ignore[list-item]

    def test_clone_deep_copies_parts(self):
        inner = MimeMessage("image/gif", np.zeros(4, dtype=np.uint8))
        msg = MimeMessage.multipart([inner])
        copy = msg.clone()
        copy.parts[0].body[0] = 9
        assert inner.body[0] == 0
