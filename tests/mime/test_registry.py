import pytest

from repro.errors import TypeHierarchyError
from repro.mime.registry import TypeRegistry, default_registry


@pytest.fixture
def reg():
    return default_registry()


class TestStructuralSubtyping:
    def test_reflexive(self, reg):
        assert reg.is_subtype("text/plain", "text/plain")

    def test_wildcard_supertype(self, reg):
        assert reg.is_subtype("text/richtext", "text/*")
        assert reg.is_subtype("text/richtext", "*/*")

    def test_wildcard_not_subtype_of_concrete(self, reg):
        assert not reg.is_subtype("text/*", "text/plain")

    def test_cross_type(self, reg):
        assert not reg.is_subtype("image/gif", "text/*")

    def test_bare_name_is_wildcard(self, reg):
        # the thesis compatibility example: text/richtext <= text
        assert reg.is_subtype("text/richtext", "text")


class TestDeclaredSubtyping:
    def test_direct_edge(self, reg):
        assert reg.is_subtype("text/richtext", "text/plain")

    def test_transitive(self, reg):
        # html <= richtext <= plain in the default hierarchy
        assert reg.is_subtype("text/html", "text/plain")

    def test_not_symmetric(self, reg):
        assert not reg.is_subtype("text/plain", "text/richtext")

    def test_cycle_rejected(self):
        r = TypeRegistry()
        r.register_subtype("a/b", "a/c")
        r.register_subtype("a/c", "a/d")
        with pytest.raises(TypeHierarchyError):
            r.register_subtype("a/d", "a/b")

    def test_self_edge_rejected(self):
        with pytest.raises(TypeHierarchyError):
            TypeRegistry().register_subtype("a/b", "a/b")

    def test_declared_edge_to_wildcard_of_other_type(self):
        # e.g. application/postscript convertible-to text/* is NOT implied;
        # but can be declared.
        r = TypeRegistry()
        assert not r.is_subtype("application/postscript", "text/*")
        r.register_subtype("application/postscript", "text/*")
        assert r.is_subtype("application/postscript", "text/*")


class TestCompatibility:
    def test_thesis_example(self, reg):
        # PostScript-to-Text output (text/richtext) feeding Text Compressor
        # input (text) is valid -- section 4.4.1.
        assert reg.compatible("text/richtext", "text")

    def test_incompatible(self, reg):
        assert not reg.compatible("image/gif", "text")

    def test_any_sink_accepts_all(self, reg):
        assert reg.compatible("image/jpeg", "*/*")


class TestRegistry:
    def test_register_idempotent(self):
        r = TypeRegistry()
        r.register("a/b")
        r.register("a/b")
        assert "a/b" in r.known_types()

    def test_register_strips_params(self):
        r = TypeRegistry()
        mt = r.register("text/plain; charset=utf-8")
        assert mt.essence == "text/plain"
        assert "text/plain" in r.known_types()

    def test_common_supertypes(self, reg):
        common = reg.common_supertypes("text/html", "text/richtext")
        assert "text/richtext" in common
        assert "text/plain" in common
        assert "text/*" in common
        assert "*/*" in common

    def test_common_supertypes_disjoint(self, reg):
        assert reg.common_supertypes("image/gif", "text/plain") == {"*/*"}
