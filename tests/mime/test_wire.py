import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.imagefmt import ImageRaster
from repro.codecs.psdoc import PsDocument
from repro.errors import MimeError
from repro.mime.message import MimeMessage
from repro.mime.wire import parse_message, serialize_message
from repro.workloads.content import (
    ps_page_message,
    synthetic_image_message,
    synthetic_ps_message,
    web_page_message,
)


def roundtrip(message):
    return parse_message(serialize_message(message))


class TestScalarBodies:
    def test_bytes(self):
        msg = MimeMessage("text/plain", b"hello\nworld\n\nwith blank lines")
        out = roundtrip(msg)
        assert out.body == msg.body
        assert out.content_type == msg.content_type

    def test_binary_safe(self):
        payload = bytes(range(256)) * 4
        out = roundtrip(MimeMessage("application/octet-stream", payload))
        assert out.body == payload

    def test_str_payload(self):
        out = roundtrip(MimeMessage("text/plain", "héllo ünïcode"))
        assert out.body == "héllo ünïcode"
        assert isinstance(out.body, str)

    def test_empty_body(self):
        out = roundtrip(MimeMessage("text/plain", b""))
        assert out.body == b""

    def test_none_body(self):
        out = roundtrip(MimeMessage("text/plain", None))
        assert out.body == b""  # None flattens to empty bytes on the wire

    def test_headers_preserved(self):
        msg = MimeMessage("text/plain", b"x", session="sess-9")
        msg.headers.push_peer("decryptor")
        msg.headers.set("X-Custom", "value")
        out = roundtrip(msg)
        assert out.session == "sess-9"
        assert out.headers.peer_stack() == ["decryptor"]
        assert out.headers.get("X-Custom") == "value"


class TestStructuredBodies:
    def test_raster(self):
        raster = ImageRaster.synthetic(33, 21, seed=4)
        out = roundtrip(MimeMessage("image/gif", raster))
        assert isinstance(out.body, ImageRaster)
        assert out.body == raster

    def test_psdoc(self):
        msg = synthetic_ps_message(3, seed=5)
        out = roundtrip(msg)
        assert isinstance(out.body, PsDocument)
        assert out.body == msg.body

    def test_payload_marker_not_leaked(self):
        out = roundtrip(MimeMessage("image/gif", ImageRaster.synthetic(8, 8)))
        assert "X-MobiGATE-Payload" not in out.headers


class TestMultipart:
    def test_web_page(self):
        page = web_page_message(n_images=2, text_bytes=512, seed=6)
        out = roundtrip(page)
        assert out.is_multipart
        assert len(out.parts) == 3
        for a, b in zip(out.parts, page.parts):
            assert a.body == b.body
            assert a.content_type.essence == b.content_type.essence

    def test_nested_multipart(self):
        inner = web_page_message(n_images=1, text_bytes=64, seed=7)
        outer = MimeMessage.multipart([inner, MimeMessage("text/plain", b"tail")])
        out = roundtrip(outer)
        assert out.parts[0].is_multipart
        assert len(out.parts[0].parts) == 2
        assert out.parts[1].body == b"tail"

    def test_ps_page(self):
        out = roundtrip(ps_page_message(n_images=1, paragraphs=2, seed=8))
        kinds = {p.content_type.essence for p in out.parts}
        assert kinds == {"application/postscript", "image/gif"}

    def test_boundary_not_leaked_into_type(self):
        out = roundtrip(web_page_message(n_images=0, text_bytes=32, seed=9))
        assert out.content_type.param("boundary") is None


class TestErrors:
    def test_no_terminator(self):
        with pytest.raises(MimeError):
            parse_message(b"Content-Type: text/plain")

    def test_missing_content_type(self):
        with pytest.raises(MimeError):
            parse_message(b"X-Other: 1\n\nbody")

    def test_missing_length(self):
        with pytest.raises(MimeError):
            parse_message(b"Content-Type: text/plain\n\nbody")

    def test_length_mismatch(self):
        with pytest.raises(MimeError):
            parse_message(b"Content-Type: text/plain\nContent-Length: 99\n\nshort")

    def test_bad_length(self):
        with pytest.raises(MimeError):
            parse_message(b"Content-Type: text/plain\nContent-Length: nan\n\n")

    def test_unknown_payload_kind(self):
        wire = (
            b"Content-Type: text/plain\nX-MobiGATE-Payload: alien\n"
            b"Content-Length: 1\n\nz"
        )
        with pytest.raises(MimeError):
            parse_message(wire)

    def test_truncated_multipart(self):
        page = web_page_message(n_images=1, text_bytes=64, seed=10)
        wire = serialize_message(page)
        with pytest.raises(MimeError):
            parse_message(wire[:-10] + b"Content-Length" )  # mangled tail

    def test_unsupported_payload_type(self):
        msg = MimeMessage("text/plain", b"")
        msg.body = 3.14  # bypass validation deliberately
        with pytest.raises(MimeError):
            serialize_message(msg)


@settings(deadline=None, max_examples=60)
@given(st.binary(max_size=4096), st.text(max_size=40).filter(lambda s: "\n" not in s and "\r" not in s))
def test_roundtrip_property(payload, header_value):
    msg = MimeMessage("application/octet-stream", payload)
    if header_value.strip():
        msg.headers.set("X-Fuzz", header_value)
    out = roundtrip(msg)
    assert out.body == payload
    assert out.headers.get("X-Fuzz", "").strip() == msg.headers.get("X-Fuzz", "").strip()


class TestEndToEndOverWire:
    def test_client_parses_wire_bytes(self):
        """The full §3.4.1 story: server output serialised, client parses."""
        from repro.apps import build_server
        from repro.client.client import MobiGateClient
        from repro.runtime.scheduler import InlineScheduler

        server = build_server()
        stream = server.deploy_script("""
main stream secure{
  streamlet comp = new-streamlet (text_compress);
  streamlet enc = new-streamlet (encryptor);
  connect (comp.po, enc.pi);
}
""")
        scheduler = InlineScheduler(stream)
        original = b"the quick brown fox " * 50
        stream.post(MimeMessage("text/plain", original))
        scheduler.pump()
        [processed] = stream.collect()

        wire_bytes = serialize_message(processed)      # what crosses the air
        received = parse_message(wire_bytes)           # what the client sees
        [delivered] = MobiGateClient().receive(received)
        assert delivered.body == original
