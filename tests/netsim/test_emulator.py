"""Unit tests for the end-to-end emulator and the direct-transfer baseline."""

import pytest

from repro.apps import WEB_ACCELERATION_MCL, build_server
from repro.client.client import MobiGateClient
from repro.errors import NetSimError
from repro.mime.message import MimeMessage
from repro.netsim.emulator import DirectTransfer, EndToEndEmulator
from repro.netsim.link import WirelessLink
from repro.util.clock import VirtualClock
from repro.workloads.content import synthetic_text_message


def make_emulator(bandwidth=1_000_000, *, loss=0.0, charge=True, delay=0.0):
    clock = VirtualClock()
    server = build_server(clock=clock)
    stream = server.deploy_script(WEB_ACCELERATION_MCL)
    link = WirelessLink(
        bandwidth, propagation_delay=delay, loss_rate=loss, clock=clock, seed=5
    )
    client = MobiGateClient()
    return EndToEndEmulator(stream, link, client, charge_processing_time=charge), client


class TestEndToEndEmulator:
    def test_requires_virtual_clock(self):
        server = build_server()
        stream = server.deploy_script(WEB_ACCELERATION_MCL)
        wall_link = WirelessLink(1000)  # defaults to its own VirtualClock
        from repro.util.clock import WallClock

        wall_link.clock = WallClock()  # type: ignore[assignment]
        with pytest.raises(NetSimError):
            EndToEndEmulator(stream, wall_link, MobiGateClient())

    def test_report_accounting_consistent(self):
        emulator, _client = make_emulator()
        workload = [synthetic_text_message(2048, seed=i) for i in range(4)]
        report = emulator.run(workload)
        assert report.messages_sent == 4
        assert report.messages_delivered == 4
        assert report.app_messages == 4
        assert report.bytes_on_link > 0
        assert report.elapsed > 0
        assert report.losses == 0

    def test_processing_time_charged_to_clock(self):
        emulator, _ = make_emulator(charge=True)
        report = emulator.run([synthetic_text_message(1024, seed=1)])
        assert report.processing_time > 0
        # elapsed covers at least transmission + charged processing
        assert report.elapsed >= report.processing_time

    def test_processing_charge_can_be_disabled(self):
        emulator, _ = make_emulator(bandwidth=10_000_000, charge=False)
        message = synthetic_text_message(1000, seed=2)
        report = emulator.run([message])
        # elapsed is purely transmission: size/bandwidth, tiny but > 0
        assert 0 < report.elapsed < 0.1
        assert report.processing_time > 0  # still measured, just not charged

    def test_lossy_link_counted(self):
        emulator, client = make_emulator(loss=0.6)
        workload = [synthetic_text_message(512, seed=i) for i in range(20)]
        report = emulator.run(workload)
        assert report.losses > 0
        assert report.messages_delivered == 20 - report.losses
        assert len(client.take_delivered()) == report.app_messages

    def test_propagation_delay_in_elapsed(self):
        fast, _ = make_emulator(delay=0.0, charge=False)
        slow, _ = make_emulator(delay=0.5, charge=False)
        msg = lambda: [synthetic_text_message(512, seed=9)]  # noqa: E731
        assert slow.run(msg()).elapsed > fast.run(msg()).elapsed + 0.4


class TestDirectTransfer:
    def test_identity_delivery(self):
        link = WirelessLink(8000, clock=VirtualClock())
        messages = [MimeMessage("text/plain", b"x" * 100) for _ in range(3)]
        report = DirectTransfer(link).run(messages)
        assert report.messages_delivered == 3
        assert report.bytes_on_link == report.bytes_offered_app
        assert report.reduction_ratio == 1.0

    def test_elapsed_matches_serialization(self):
        link = WirelessLink(8000, clock=VirtualClock())  # 1000 B/s
        message = MimeMessage("text/plain", b"y" * 1000)
        size = message.total_size()
        report = DirectTransfer(link).run([message])
        assert report.elapsed == pytest.approx(size / 1000.0)

    def test_goodput_zero_cases(self):
        link = WirelessLink(8000, clock=VirtualClock())
        report = DirectTransfer(link).run([])
        assert report.goodput_bps == 0.0
        assert report.throughput_bps == 0.0
