import pytest

from repro.errors import NetSimError
from repro.netsim.energy import RadioEnergyModel


@pytest.fixture
def model():
    return RadioEnergyModel(
        wakeup_j=0.01, rx_j_per_byte=1e-6, active_w=1.0, linger_s=0.1
    )


class TestValidation:
    def test_negative_parameter(self):
        with pytest.raises(NetSimError):
            RadioEnergyModel(wakeup_j=-1)

    def test_bad_arrival(self, model):
        with pytest.raises(NetSimError):
            model.consumed([(-1.0, 10)])
        with pytest.raises(NetSimError):
            model.consumed([(1.0, -10)])


class TestAccounting:
    def test_empty_schedule(self, model):
        report = model.consumed([])
        assert report.wakeups == 0
        assert report.joules == 0.0
        assert report.joules_per_byte == 0.0

    def test_single_arrival(self, model):
        report = model.consumed([(5.0, 1000)])
        assert report.wakeups == 1
        assert report.rx_bytes == 1000
        assert report.awake_seconds == pytest.approx(0.1)
        assert report.joules == pytest.approx(0.01 + 1000e-6 + 0.1)

    def test_spread_arrivals_each_wake(self, model):
        report = model.consumed([(0.0, 100), (10.0, 100), (20.0, 100)])
        assert report.wakeups == 3
        assert report.awake_seconds == pytest.approx(0.3)

    def test_clustered_arrivals_one_wakeup(self, model):
        report = model.consumed([(0.0, 100), (0.05, 100), (0.09, 100)])
        assert report.wakeups == 1
        # linger extends to 0.09 + 0.1
        assert report.awake_seconds == pytest.approx(0.19)

    def test_unsorted_input_handled(self, model):
        a = model.consumed([(10.0, 1), (0.0, 1)])
        b = model.consumed([(0.0, 1), (10.0, 1)])
        assert a == b

    def test_bundling_saves_energy(self, model):
        # the §4.3 power-saving premise: same bytes, fewer bursts
        spread = model.consumed([(float(i), 500) for i in range(8)])
        bundled = model.consumed([(0.0, 4000)])
        assert bundled.rx_bytes == spread.rx_bytes
        assert bundled.wakeups < spread.wakeups
        assert bundled.joules < spread.joules


class TestEmulatorIntegration:
    def test_arrival_schedule_recorded(self):
        from repro.apps import WEB_ACCELERATION_MCL, build_server
        from repro.client.client import MobiGateClient
        from repro.netsim.emulator import EndToEndEmulator
        from repro.netsim.link import WirelessLink
        from repro.util.clock import VirtualClock
        from repro.workloads.content import synthetic_text_message

        clock = VirtualClock()
        server = build_server(clock=clock)
        stream = server.deploy_script(WEB_ACCELERATION_MCL)
        link = WirelessLink(1_000_000, clock=clock)
        emulator = EndToEndEmulator(stream, link, MobiGateClient())
        report = emulator.run([synthetic_text_message(1024, seed=i) for i in range(3)])
        assert len(report.arrivals) == 3
        times = [t for t, _ in report.arrivals]
        assert times == sorted(times)
        assert sum(size for _, size in report.arrivals) == report.bytes_on_link
