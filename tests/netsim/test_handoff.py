import pytest

from repro.errors import NetSimError
from repro.events import EventCategory
from repro.netsim.handoff import HandoffManager
from repro.netsim.link import WirelessLink
from repro.runtime.events import EventManager
from repro.util.clock import VirtualClock, WallClock


class Recorder:
    def __init__(self, name="app"):
        self.name = name
        self.seen = []

    def on_event(self, event):
        self.seen.append(event.event_id)


@pytest.fixture
def setup():
    clock = VirtualClock()
    events = EventManager()
    recorder = Recorder()
    events.subscribe(EventCategory.NETWORK_VARIATION, recorder)
    manager = HandoffManager(events, low_threshold_bps=100_000)
    manager.add_link("wavelan", WirelessLink(1_000_000, clock=clock))
    manager.add_link("gsm", WirelessLink(20_000, clock=clock))
    return clock, manager, recorder


class TestRegistry:
    def test_first_link_becomes_active(self, setup):
        _clock, manager, _recorder = setup
        assert manager.active_name == "wavelan"
        assert manager.bandwidth_bps == 1_000_000

    def test_duplicate_name_rejected(self, setup):
        _clock, manager, _ = setup
        with pytest.raises(NetSimError):
            manager.add_link("gsm", WirelessLink(1, clock=manager.clock))

    def test_wall_clock_link_rejected(self, setup):
        _clock, manager, _ = setup
        link = WirelessLink(1000)
        link.clock = WallClock()  # type: ignore[assignment]
        with pytest.raises(NetSimError):
            manager.add_link("bad", link)

    def test_foreign_clock_rejected(self, setup):
        _clock, manager, _ = setup
        with pytest.raises(NetSimError):
            manager.add_link("other", WirelessLink(1000, clock=VirtualClock()))

    def test_unknown_interface(self, setup):
        _clock, manager, _ = setup
        with pytest.raises(NetSimError):
            manager.switch_to("bluetooth")

    def test_empty_manager(self):
        manager = HandoffManager(EventManager())
        with pytest.raises(NetSimError):
            manager.active_name
        with pytest.raises(NetSimError):
            manager.clock

    def test_bad_threshold(self):
        with pytest.raises(NetSimError):
            HandoffManager(EventManager(), low_threshold_bps=0)


class TestHandoff:
    def test_downgrade_raises_low(self, setup):
        _clock, manager, recorder = setup
        event = manager.switch_to("gsm")
        assert event == "LOW_BANDWIDTH"
        assert recorder.seen == ["LOW_BANDWIDTH"]
        assert manager.active_name == "gsm"

    def test_upgrade_raises_high(self, setup):
        _clock, manager, recorder = setup
        manager.switch_to("gsm")
        event = manager.switch_to("wavelan")
        assert event == "HIGH_BANDWIDTH"
        assert recorder.seen == ["LOW_BANDWIDTH", "HIGH_BANDWIDTH"]

    def test_same_class_handoff_silent(self, setup):
        clock, manager, recorder = setup
        manager.add_link("wifi2", WirelessLink(500_000, clock=clock))
        event = manager.switch_to("wifi2")  # still above the threshold
        assert event is None
        assert recorder.seen == []

    def test_switch_to_self_is_noop(self, setup):
        _clock, manager, recorder = setup
        assert manager.switch_to("wavelan") is None
        assert manager.handoffs == []

    def test_handoff_log(self, setup):
        clock, manager, _ = setup
        clock.advance(3.0)
        manager.switch_to("gsm")
        assert manager.handoffs == [(3.0, "gsm", "wavelan")]

    def test_transmit_uses_active(self, setup):
        _clock, manager, _ = setup
        fast = manager.transmit(1000)
        manager.switch_to("gsm")
        slow = manager.transmit(1000)
        assert (slow.arrival - slow.start) > (fast.arrival - fast.start)


class TestHandoffDrivesAdaptation:
    def test_stream_reconfigures_on_handoff(self):
        """The full §8.2.1 scenario: a handoff event re-adapts the stream."""
        from repro.apps import WEB_ACCELERATION_MCL, build_server

        clock = VirtualClock()
        server = build_server(clock=clock)
        stream = server.deploy_script(WEB_ACCELERATION_MCL)
        manager = HandoffManager(server.events, low_threshold_bps=100_000)
        manager.add_link("wavelan", WirelessLink(1_000_000, clock=clock))
        manager.add_link("gsm", WirelessLink(20_000, clock=clock))

        assert not stream.node("tc").inputs  # compressor dormant
        manager.switch_to("gsm")
        assert stream.node("tc").inputs      # inserted by LOW_BANDWIDTH
        manager.switch_to("wavelan")
        assert not stream.node("tc").inputs  # extracted by HIGH_BANDWIDTH
