import pytest

from repro.errors import NetSimError
from repro.netsim.link import WirelessLink
from repro.util.clock import VirtualClock


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(NetSimError):
            WirelessLink(0)
        with pytest.raises(NetSimError):
            WirelessLink(-5)

    def test_bad_delay(self):
        with pytest.raises(NetSimError):
            WirelessLink(1000, propagation_delay=-0.1)

    def test_bad_loss(self):
        with pytest.raises(NetSimError):
            WirelessLink(1000, loss_rate=1.0)

    def test_negative_size(self):
        with pytest.raises(NetSimError):
            WirelessLink(1000).transmit(-1)


class TestTransmission:
    def test_serialization_time(self):
        link = WirelessLink(8000)  # 1000 bytes/s
        assert link.transmission_time(500) == pytest.approx(0.5)

    def test_arrival_includes_delay(self):
        link = WirelessLink(8000, propagation_delay=0.05)
        result = link.transmit(500)
        assert result.arrival == pytest.approx(0.55)

    def test_back_to_back_serializes(self):
        link = WirelessLink(8000)
        first = link.transmit(1000)   # busy until t=1
        second = link.transmit(1000)  # starts at 1, done at 2
        assert first.arrival == pytest.approx(1.0)
        assert second.start == pytest.approx(1.0)
        assert second.arrival == pytest.approx(2.0)

    def test_idle_gap_respected(self):
        clock = VirtualClock()
        link = WirelessLink(8000, clock=clock)
        link.transmit(1000)
        clock.advance(5.0)
        result = link.transmit(1000)
        assert result.start == pytest.approx(5.0)

    def test_explicit_start_time(self):
        link = WirelessLink(8000)
        result = link.transmit(800, at=2.0)
        assert result.start == pytest.approx(2.0)

    def test_bandwidth_change_affects_later_sends(self):
        link = WirelessLink(8000)
        link.set_bandwidth(16000)
        assert link.transmission_time(1000) == pytest.approx(0.5)


class TestLoss:
    def test_no_loss_by_default(self):
        link = WirelessLink(1_000_000)
        results = [link.transmit(100) for _ in range(200)]
        assert all(not r.lost for r in results)

    def test_loss_rate_approximate(self):
        link = WirelessLink(1_000_000, loss_rate=0.3, seed=42)
        results = [link.transmit(100) for _ in range(2000)]
        lost = sum(r.lost for r in results)
        assert 0.25 < lost / 2000 < 0.35
        assert link.losses == lost

    def test_loss_reproducible(self):
        a = WirelessLink(1_000_000, loss_rate=0.5, seed=7)
        b = WirelessLink(1_000_000, loss_rate=0.5, seed=7)
        pattern_a = [a.transmit(10).lost for _ in range(100)]
        pattern_b = [b.transmit(10).lost for _ in range(100)]
        assert pattern_a == pattern_b

    def test_lost_bytes_not_delivered(self):
        link = WirelessLink(1_000_000, loss_rate=0.5, seed=1)
        for _ in range(100):
            link.transmit(10)
        assert link.bytes_delivered < link.bytes_offered


class TestAccounting:
    def test_utilization(self):
        clock = VirtualClock()
        link = WirelessLink(8000, clock=clock)
        link.transmit(1000)  # 1s busy
        clock.advance_to(2.0)
        assert link.utilization() == pytest.approx(0.5)

    def test_utilization_empty(self):
        assert WirelessLink(8000).utilization() == 0.0
