import pytest

from repro.errors import NetSimError
from repro.events import EventCategory
from repro.netsim.link import WirelessLink
from repro.netsim.monitor import ContextMonitor
from repro.netsim.traces import BandwidthTrace
from repro.runtime.events import EventManager
from repro.util.clock import VirtualClock


class TestBandwidthTrace:
    def test_constant(self):
        trace = BandwidthTrace.constant(1e6)
        assert trace.value_at(0) == 1e6
        assert trace.value_at(1e9) == 1e6

    def test_step(self):
        trace = BandwidthTrace.step(1e6, 5e4, at=10.0)
        assert trace.value_at(9.99) == 1e6
        assert trace.value_at(10.0) == 5e4

    def test_fade_recovers(self):
        trace = BandwidthTrace.fade(1e6, 5e4, start=5.0, duration=3.0)
        assert trace.value_at(4.9) == 1e6
        assert trace.value_at(6.0) == 5e4
        assert trace.value_at(8.0) == 1e6

    def test_random_walk_bounded_and_reproducible(self):
        kwargs = dict(start_bps=5e5, minimum_bps=1e4, maximum_bps=2e6,
                      interval=1.0, steps=50, seed=3)
        a = BandwidthTrace.random_walk(**kwargs)
        b = BandwidthTrace.random_walk(**kwargs)
        assert a.steps() == b.steps()
        assert all(1e4 <= bw <= 2e6 for _, bw in a.steps())

    def test_validation(self):
        with pytest.raises(NetSimError):
            BandwidthTrace([])
        with pytest.raises(NetSimError):
            BandwidthTrace([(1.0, 1e6)])  # must start at 0
        with pytest.raises(NetSimError):
            BandwidthTrace([(0.0, 1e6), (0.0, 2e6)])  # not increasing
        with pytest.raises(NetSimError):
            BandwidthTrace([(0.0, -5)])
        with pytest.raises(NetSimError):
            BandwidthTrace.constant(1e6).value_at(-1)

    def test_change_points(self):
        trace = BandwidthTrace.fade(1e6, 5e4, start=2.0, duration=1.0)
        assert trace.change_points() == [2.0, 3.0]


class Recorder:
    def __init__(self, name="app"):
        self.name = name
        self.seen = []

    def on_event(self, event):
        self.seen.append(event.event_id)


class TestContextMonitor:
    def make(self, trace, threshold=100_000.0, hysteresis=0.05):
        clock = VirtualClock()
        link = WirelessLink(trace.value_at(0), clock=clock)
        events = EventManager()
        recorder = Recorder()
        events.subscribe(EventCategory.NETWORK_VARIATION, recorder)
        monitor = ContextMonitor(
            link, events, low_threshold_bps=threshold, hysteresis=hysteresis,
            trace=trace,
        )
        return clock, link, monitor, recorder

    def test_low_edge_fires_once(self):
        trace = BandwidthTrace.step(1e6, 5e4, at=5.0)
        clock, link, monitor, recorder = self.make(trace)
        for t in [0.0, 2.0, 5.0, 6.0, 7.0]:
            clock.advance_to(t)
            monitor.check()
        assert recorder.seen == ["LOW_BANDWIDTH"]
        assert link.bandwidth_bps == 5e4

    def test_recovery_fires_high(self):
        trace = BandwidthTrace.fade(1e6, 5e4, start=2.0, duration=2.0)
        clock, _link, monitor, recorder = self.make(trace)
        for t in [0.0, 2.5, 5.0]:
            clock.advance_to(t)
            monitor.check()
        assert recorder.seen == ["LOW_BANDWIDTH", "HIGH_BANDWIDTH"]

    def test_hysteresis_blocks_thrash(self):
        # hover just under the threshold inside the hysteresis band
        trace = BandwidthTrace.step(1e6, 98_000, at=1.0)
        clock, _link, monitor, recorder = self.make(trace, hysteresis=0.05)
        for t in [0.0, 1.5, 2.0, 3.0]:
            clock.advance_to(t)
            monitor.check()
        assert recorder.seen == []  # 98k is within 5% of 100k

    def test_starts_low_if_initial_bandwidth_low(self):
        trace = BandwidthTrace.constant(5e4)
        _clock, _link, monitor, recorder = self.make(trace)
        assert monitor.in_low_state
        monitor.check()
        assert recorder.seen == []  # no edge: it was low from the start

    def test_raised_log(self):
        trace = BandwidthTrace.step(1e6, 5e4, at=1.0)
        clock, _link, monitor, _ = self.make(trace)
        clock.advance_to(2.0)
        monitor.check()
        assert monitor.raised == [(2.0, "LOW_BANDWIDTH")]

    def test_validation(self):
        link = WirelessLink(1e6)
        events = EventManager()
        with pytest.raises(NetSimError):
            ContextMonitor(link, events, low_threshold_bps=0)
        with pytest.raises(NetSimError):
            ContextMonitor(link, events, low_threshold_bps=1e5, hysteresis=1.5)
