"""Tests of the wireless-TCP substrate (§2.1 motivation protocols)."""

import pytest

from repro.errors import NetSimError
from repro.netsim.wtcp import EventSim, WTcpConfig, run_wtcp


class TestEventSim:
    def test_ordering(self):
        sim = EventSim()
        log = []
        sim.at(2.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_at_same_time(self):
        sim = EventSim()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_after(self):
        sim = EventSim()
        seen = []
        sim.at(1.0, lambda: sim.after(0.5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.5]

    def test_past_rejected(self):
        sim = EventSim()
        sim.now = 5.0
        with pytest.raises(NetSimError):
            sim.at(1.0, lambda: None)

    def test_until(self):
        sim = EventSim()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(10.0, lambda: log.append(2))
        sim.run(until=5.0)
        assert log == [1]


class TestConfig:
    def test_validation(self):
        with pytest.raises(NetSimError):
            run_wtcp("plain", segments=0)
        with pytest.raises(NetSimError):
            run_wtcp("plain", wireless_loss=1.0)
        with pytest.raises(NetSimError):
            run_wtcp("plain", nonsense=1)

    def test_unknown_scheme(self):
        with pytest.raises(NetSimError):
            run_wtcp("magic")


class TestCorrectness:
    @pytest.mark.parametrize("scheme", ["plain", "snoop", "split"])
    @pytest.mark.parametrize("loss", [0.0, 0.05, 0.15])
    def test_all_segments_delivered(self, scheme, loss):
        result = run_wtcp(scheme, wireless_loss=loss, segments=150, seed=2)
        assert result.delivered_segments == 150
        assert result.elapsed > 0

    def test_deterministic(self):
        a = run_wtcp("plain", wireless_loss=0.1, seed=9)
        b = run_wtcp("plain", wireless_loss=0.1, seed=9)
        assert a == b

    def test_lossless_equal_plain_snoop(self):
        plain = run_wtcp("plain", wireless_loss=0.0)
        snoop = run_wtcp("snoop", wireless_loss=0.0)
        assert plain.elapsed == pytest.approx(snoop.elapsed)
        assert snoop.local_retransmissions == 0


class TestLiteratureShapes:
    def test_plain_tcp_collapses_with_loss(self):
        clean = run_wtcp("plain", wireless_loss=0.0, seed=3)
        lossy = run_wtcp("plain", wireless_loss=0.10, seed=3)
        assert lossy.goodput_bps < clean.goodput_bps / 5
        assert lossy.timeouts > 0

    def test_snoop_shields_the_sender(self):
        snoop = run_wtcp("snoop", wireless_loss=0.10, seed=3)
        plain = run_wtcp("plain", wireless_loss=0.10, seed=3)
        # local retransmissions replace end-to-end ones...
        assert snoop.local_retransmissions > 0
        assert snoop.sender_retransmissions < plain.sender_retransmissions
        # ...and the sender's clock never fires
        assert snoop.timeouts == 0
        assert snoop.goodput_bps > plain.goodput_bps * 3

    def test_split_beats_plain(self):
        split = run_wtcp("split", wireless_loss=0.10, seed=3)
        plain = run_wtcp("plain", wireless_loss=0.10, seed=3)
        assert split.goodput_bps > plain.goodput_bps * 2
        # loss recovery happens at the base station, not end to end
        assert split.sender_retransmissions == 0

    def test_snoop_degrades_gracefully(self):
        results = [
            run_wtcp("snoop", wireless_loss=loss, seed=4).goodput_bps
            for loss in (0.0, 0.05, 0.10, 0.20)
        ]
        assert all(a >= b for a, b in zip(results, results[1:]))
        assert results[-1] > results[0] / 3  # still in the same league
