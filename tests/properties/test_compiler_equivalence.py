"""Front-end coherence: formatting a script never changes its meaning.

For generated *valid* compositions, ``compile(format(parse(src)))`` must
produce the same configuration table as ``compile(src)`` — the pretty
printer, parser, and compiler agree on semantics, not just syntax.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcl.compiler import compile_script
from repro.mcl.parser import parse_script
from repro.mcl.pretty import format_script

DEFS = """
streamlet stage{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet fork{
  port{ in pi : text/*; out po1 : text/plain; out po2 : text/plain; }
}
streamlet join{
  port{ in pi1 : text/*; in pi2 : text/*; out po : text/plain; }
}
"""


@st.composite
def valid_stream(draw):
    """A random valid body: a chain with optional fork/join diamond."""
    chain_len = draw(st.integers(min_value=1, max_value=5))
    lines = []
    names = [f"s{i}" for i in range(chain_len)]
    lines.append(f"  streamlet {', '.join(names)} = new-streamlet (stage);")
    for a, b in zip(names, names[1:]):
        lines.append(f"  connect ({a}.po, {b}.pi);")
    if draw(st.booleans()):
        lines.append("  streamlet f = new-streamlet (fork);")
        lines.append("  streamlet j = new-streamlet (join);")
        lines.append(f"  connect ({names[-1]}.po, f.pi);")
        lines.append("  connect (f.po1, j.pi1);")
        lines.append("  connect (f.po2, j.pi2);")
    if draw(st.booleans()):
        lines.append("  streamlet dorm = new-streamlet (stage);")
        event = draw(st.sampled_from(["LOW_BANDWIDTH", "LOW_ENERGY"]))
        lines.append(f"  when ({event}){{")
        lines.append(f"    insert (s0.po, s1.pi, dorm);" if chain_len > 1 else
                     "    disconnectall (s0);")
        lines.append("  }")
    return DEFS + "main stream gen{\n" + "\n".join(lines) + "\n}"


def _table_fingerprint(table):
    return (
        sorted((name, d.name) for name, d in table.instances.items()),
        sorted((str(l.source), str(l.sink), str(l.mediatype)) for l in table.links),
        sorted(table.handlers),
        tuple(str(r) for r in table.exposed_in),
        tuple(str(r) for r in table.exposed_out),
    )


@settings(deadline=None, max_examples=60)
@given(valid_stream())
def test_format_preserves_compilation(source):
    original = compile_script(source).main_table()
    reformatted = format_script(parse_script(source))
    again = compile_script(reformatted).main_table()
    assert _table_fingerprint(original) == _table_fingerprint(again)
