"""Seeded kill-and-restart property: the fold balances across generations.

A model-based test of the ledger arithmetic: a reference model tracks
what a gateway *should* owe after any interleaving of admissions, fates,
dead letters, and process deaths, while the same operations are written
through a real :class:`FileWALStore` — reopened between generations the
way a crashed process reopens it, with seeded torn tails appended at
crash points.  After every generation the fold must reproduce the model
exactly and the cross-crash conservation equation must balance.
"""

import random

import pytest

from repro.mime.message import MimeMessage
from repro.mime.wire import serialize_message
from repro.store import FileWALStore, Ledger

SESSION = "prop-session"
MCL = "main stream chain{ streamlet r = new-streamlet (redirector); }"


class Model:
    """Reference arithmetic for one session across process generations."""

    def __init__(self):
        self.admitted = 0
        self.delivered = 0
        self.absorbed = 0
        self.dead_lettered = 0
        self.dropped = 0
        self.running = 0
        self.frozen = 0
        self.parked = set()

    def counters(self, admitted, delivered, absorbed, dead, dropped):
        self.admitted += admitted
        self.delivered += delivered
        self.absorbed += absorbed
        self.dead_lettered += dead
        self.dropped += dropped
        self.running += admitted - (delivered + absorbed + dead + dropped)

    def crash_recovered(self):
        self.frozen += self.running
        self.running = 0


def random_batch(rng, model):
    """A counters delta a live mirror could legally produce.

    The mirror reads terminal fates first and admissions last, so a
    batch never reports more outflow than the session ever admitted;
    the model enforces the same bound on the generator.
    """
    admitted = rng.randint(0, 6)
    budget = model.running + admitted
    delivered = rng.randint(0, budget)
    budget -= delivered
    absorbed = rng.randint(0, min(budget, 2))
    budget -= absorbed
    dead = rng.randint(0, min(budget, 2))
    budget -= dead
    dropped = rng.randint(0, min(budget, 2))
    return admitted, delivered, absorbed, dead, dropped


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_fold_matches_the_model_across_crashing_generations(tmp_path, seed):
    rng = random.Random(seed)
    path = str(tmp_path / "ledger.wal")
    model = Model()
    frame = serialize_message(MimeMessage("text/plain", b"dead letter"))
    generations = rng.randint(3, 6)
    deployed = False
    for generation in range(generations):
        ledger = Ledger(FileWALStore(path))
        fold = ledger.fold().session(SESSION)
        # -- what a restart would see: the model, exactly -------------------
        assert fold.admitted == model.admitted
        assert fold.delivered == model.delivered
        assert fold.dead_lettered == model.dead_lettered
        assert fold.dropped == model.dropped
        assert fold.running_in_flight == model.running
        assert fold.recovered_in_flight == model.frozen
        assert set(fold.parked) == model.parked
        # residency after a kill is zero, so recovery freezes the tally
        assert fold.balances(resident=model.running)
        if not deployed:
            ledger.deployed(SESSION, mcl=MCL, scheduler="threaded")
            deployed = True
        if generation > 0:
            ledger.recovered(
                SESSION,
                in_flight=fold.running_in_flight,
                parked=len(fold.parked),
                retries=len(fold.pending_retries),
            )
            model.crash_recovered()
        # -- a generation's worth of traffic --------------------------------
        for _ in range(rng.randint(1, 8)):
            batch = random_batch(rng, model)
            ledger.counters(
                SESSION,
                admitted=batch[0],
                delivered=batch[1],
                absorbed=batch[2],
                dead_letters=batch[3],
                dropped=batch[4],
            )
            model.counters(*batch)
            if batch[3] and rng.random() < 0.7:
                msg_id = f"dl-{generation}-{len(model.parked)}"
                ledger.dead_letter(SESSION, msg_id, reason="exhausted", frame=frame)
                model.parked.add(msg_id)
            if model.parked and rng.random() < 0.2:
                victim = sorted(model.parked)[0]
                ledger.dead_letter_evicted(SESSION, victim)
                model.parked.discard(victim)
            ledger.flush()
        # -- the crash: no close; seeded torn tail after the flushed prefix --
        if rng.random() < 0.5:
            with open(path, "ab") as fh:
                fh.write(b'0badc0de {"ev": "counters", "sess')
    final = Ledger(FileWALStore(path)).fold().session(SESSION)
    assert final.balances(resident=model.running)
    assert final.admitted == (
        final.delivered + final.absorbed + final.dead_lettered
        + final.dropped + final.recovered_in_flight + model.running
    )
    assert set(final.parked) == model.parked


@pytest.mark.parametrize("seed", [3, 11])
def test_unflushed_records_after_the_last_flush_may_die_but_never_corrupt(tmp_path, seed):
    # records appended after the final flush sit in the process buffer;
    # a kill loses them, and the reopened fold simply sees the flushed
    # prefix — never a half-record, never an unbalanced equation
    import os

    rng = random.Random(seed)
    path = str(tmp_path / "ledger.wal")
    ledger = Ledger(FileWALStore(path))
    ledger.deployed(SESSION, mcl=MCL, scheduler="threaded")
    flushed_admitted = rng.randint(1, 5)
    ledger.counters(SESSION, admitted=flushed_admitted)
    ledger.flush()
    durable_bytes = os.path.getsize(path)
    ledger.counters(SESSION, admitted=99, delivered=99)
    ledger.close()
    with open(path, "rb+") as fh:  # the kill: everything past the fsync dies
        fh.truncate(durable_bytes)
    fold = Ledger(FileWALStore(path)).fold().session(SESSION)
    assert fold.admitted == flushed_admitted
    assert fold.running_in_flight == flushed_admitted
    assert fold.balances(resident=flushed_admitted)
