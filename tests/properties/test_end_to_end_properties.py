"""System-level invariants, property-tested with hypothesis.

The headline invariant of the whole architecture: for any composition of
*invertible* streamlets, in any order, the client recovers exactly the
bytes the sender offered — the peer-stack mechanism (section 6.5) is a
correct inverse regardless of topology, message mix, or reconfiguration
timing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_server
from repro.client.client import MobiGateClient
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler

#: the invertible service vocabulary: (definition name, peer id)
INVERTIBLE = ["text_compress", "encryptor"]


def chain_mcl(definitions: list[str]) -> str:
    lines = ["main stream chain{"]
    names = []
    for index, definition in enumerate(definitions):
        name = f"s{index}"
        names.append(name)
        lines.append(f"  streamlet {name} = new-streamlet ({definition});")
    for a, b in zip(names, names[1:]):
        lines.append(f"  connect ({a}.po, {b}.pi);")
    lines.append("}")
    return "\n".join(lines)


@settings(deadline=None, max_examples=30)
@given(
    compress_first=st.booleans(),
    n_encrypt=st.integers(min_value=0, max_value=3),
    payloads=st.lists(st.binary(min_size=1, max_size=2000), min_size=1, max_size=5),
)
def test_invertible_chain_roundtrip(compress_first, n_encrypt, payloads):
    # type-valid chains: compression (text in, text out) must precede any
    # encryption (whose ciphertext is no longer text) — the same ordering
    # constraint the chapter-5 preorder analysis encodes; encryption may
    # be layered arbitrarily thanks to the stacked nonce header
    chain = (["text_compress"] if compress_first else []) + ["encryptor"] * n_encrypt
    if not chain:
        chain = ["encryptor"]
    server = build_server()
    stream = server.deploy_script(chain_mcl(chain))
    scheduler = InlineScheduler(stream)
    client = MobiGateClient()
    for payload in payloads:
        stream.post(MimeMessage("text/plain", payload))
    scheduler.pump()
    delivered = []
    for wire in stream.collect():
        delivered.extend(client.receive(wire))
    assert [m.body for m in delivered] == payloads


@settings(deadline=None, max_examples=25)
@given(
    n_messages=st.integers(min_value=0, max_value=12),
    pump_rounds=st.lists(st.integers(min_value=0, max_value=3), max_size=12),
)
def test_message_conservation(n_messages, pump_rounds):
    """in == out + pool-pending; nothing vanishes, nothing is duplicated."""
    server = build_server()
    stream = server.deploy_script(chain_mcl(["text_compress", "encryptor"]))
    scheduler = InlineScheduler(stream)
    collected = 0
    rounds = iter(pump_rounds)
    for index in range(n_messages):
        stream.post(MimeMessage("text/plain", f"msg-{index}".encode()))
        burst = next(rounds, 0)
        if burst:
            scheduler.pump(max_rounds=burst)
        collected += len(stream.collect())
    scheduler.pump()
    collected += len(stream.collect())
    assert collected == n_messages
    assert len(stream.pool) == 0
    assert stream.stats.messages_in == n_messages
    assert stream.stats.messages_out == n_messages


@settings(deadline=None, max_examples=20)
@given(
    insert_at=st.integers(min_value=0, max_value=6),
    remove_at=st.integers(min_value=0, max_value=6),
    n_messages=st.integers(min_value=1, max_value=8),
)
def test_reconfiguration_never_loses_messages(insert_at, remove_at, n_messages):
    """Insert/extract mid-run: every payload still arrives intact, in order."""
    # text-typed taps so the compressor insert is type-legal
    source = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream adapt{
  streamlet a = new-streamlet (tap);
  streamlet b = new-streamlet (tap);
  streamlet tc = new-streamlet (text_compress);
  connect (a.po, b.pi);
}
"""
    server = build_server()
    stream = server.deploy_script(source)
    scheduler = InlineScheduler(stream)
    client = MobiGateClient()
    payloads = [f"payload-{i}".encode() * 3 for i in range(n_messages)]
    inserted = False
    delivered = []
    for index, payload in enumerate(payloads):
        if index == insert_at and not inserted:
            scheduler.pump()  # drain so the splice points are quiet
            stream.insert("a.po", "b.pi", "tc")
            inserted = True
        if index == remove_at and inserted:
            scheduler.pump()
            stream.extract_streamlet("tc")
            inserted = False
        stream.post(MimeMessage("text/plain", payload))
        scheduler.pump()
        for wire in stream.collect():
            delivered.extend(client.receive(wire))
    scheduler.pump()
    for wire in stream.collect():
        delivered.extend(client.receive(wire))
    assert [m.body for m in delivered] == payloads


class TestStreamletSharing:
    def test_sessions_distinguish_streams_through_shared_instances(self):
        """Section 4.4.3: pooled stateless instances serve several streams;
        the Content-Session header keeps their traffic apart."""
        source = (
            "stream one{ streamlet c = new-streamlet (text_compress); }"
            "stream two{ streamlet c = new-streamlet (text_compress); }"
        )
        server = build_server()
        s1 = server.deploy_script(source, stream="one")
        sched1 = InlineScheduler(s1)
        s1.post(MimeMessage("text/plain", b"from stream one"))
        sched1.pump()
        [out1] = s1.collect()
        instance_one = s1.node("c").streamlet
        server.undeploy("one")  # instance returns to the pool

        s2 = server.deploy_script(source, stream="two")
        sched2 = InlineScheduler(s2)
        instance_two = s2.node("c").streamlet
        s2.post(MimeMessage("text/plain", b"from stream two"))
        sched2.pump()
        [out2] = s2.collect()

        # the very same Python object served both streams...
        assert instance_one is instance_two
        # ...and sessions kept the flows distinguishable
        assert out1.session != out2.session
        assert out1.session == s1.session
        assert out2.session == s2.session
