"""Chunking-invariance of the incremental frame parser.

The gateway reads whatever the socket hands it, so
:class:`~repro.mime.wire.FrameAssembler` must reproduce exactly what
:func:`~repro.mime.wire.parse_message` would see, for *every* possible
chunking of the byte stream.  Two angles:

* exhaustively — split the serialized frame at **every byte offset**
  (headers, multipart boundaries, length-prefixed part payloads, raster
  and PostScript codec payloads all get cut mid-structure);
* generatively — hypothesis draws random multi-cut chunkings and
  interleavings of several frames on one stream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.imagefmt import ImageRaster
from repro.codecs.psdoc import PsDocument
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, parse_message, serialize_message
from repro.workloads.content import (
    ps_page_message,
    synthetic_image_message,
    synthetic_ps_message,
    web_page_message,
)


def _equivalent(a: MimeMessage, b: MimeMessage) -> bool:
    if a.content_type.essence != b.content_type.essence:
        return False
    if a.is_multipart != b.is_multipart:
        return False
    if a.is_multipart:
        return len(a.parts) == len(b.parts) and all(
            _equivalent(x, y) for x, y in zip(a.parts, b.parts)
        )
    if isinstance(a.body, (ImageRaster, PsDocument)):
        return type(a.body) is type(b.body) and a.body == b.body
    if a.body in (None, b"") and b.body in (None, b""):
        return True
    return a.body == b.body


def _plain_message() -> MimeMessage:
    message = MimeMessage("text/plain", b"short body with\n\nblank lines")
    message.headers.session = "sess-42"
    message.headers.set("X-Probe", "v1")
    return message


def _raster_message() -> MimeMessage:
    return MimeMessage("image/gif", ImageRaster.synthetic(12, 8, seed=3))


def _psdoc_message() -> MimeMessage:
    return synthetic_ps_message(paragraphs=1, seed=5)


def _multipart_message() -> MimeMessage:
    inner = MimeMessage.multipart(
        [MimeMessage("text/plain", "unicode häder\n"), _raster_message()]
    )
    return MimeMessage.multipart([_plain_message(), inner])


@pytest.mark.parametrize(
    "build",
    [_plain_message, _raster_message, _psdoc_message, _multipart_message],
    ids=["headers", "raster", "psdoc", "multipart"],
)
def test_every_byte_offset_split(build):
    original = build()
    raw = serialize_message(original)
    reference = parse_message(raw)
    for cut in range(len(raw) + 1):
        asm = FrameAssembler()
        messages = asm.feed(raw[:cut]) + asm.feed(raw[cut:])
        assert len(messages) == 1, f"cut at {cut} yielded {len(messages)} frames"
        rebuilt = messages[0]
        assert _equivalent(rebuilt, reference), f"cut at {cut} corrupted the frame"
        assert rebuilt.session == original.session
        assert asm.pending_bytes == 0


_big_messages = st.sampled_from([
    synthetic_image_message(32, 24, seed=1),
    ps_page_message(n_images=1, paragraphs=2, image_size=(16, 12), seed=2),
    web_page_message(n_images=2, text_bytes=512, image_size=(16, 12), seed=3),
])


@settings(deadline=None, max_examples=60)
@given(
    st.lists(_big_messages, min_size=1, max_size=3),
    # scale-free cut positions: serialization length varies run-to-run
    # (multipart boundaries are regenerated), so draw fractions of it
    st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=12),
)
def test_random_chunkings_of_a_frame_stream(messages, fractions):
    raw = b"".join(serialize_message(m) for m in messages)
    cuts = sorted(int(f * len(raw)) for f in fractions)
    bounds = [0, *cuts, len(raw)]
    asm = FrameAssembler()
    rebuilt = []
    for lo, hi in zip(bounds, bounds[1:]):
        rebuilt += asm.feed(raw[lo:hi])
    assert len(rebuilt) == len(messages)
    for got, want in zip(rebuilt, messages):
        assert _equivalent(got, want)
    assert asm.pending_bytes == 0
