"""Robustness: the MCL front end fails only with MclError, never crashes.

Fuzzing the lexer/parser/compiler with arbitrary text and with
structured-but-scrambled scripts; whatever happens, the only acceptable
exceptions are the library's own.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MclError, MobiGateError
from repro.mcl.compiler import compile_script
from repro.mcl.lexer import tokenize
from repro.mcl.parser import parse_script


@settings(deadline=None, max_examples=300)
@given(st.text(max_size=300))
def test_lexer_total(text):
    try:
        tokens = tokenize(text)
    except MclError:
        return
    assert tokens[-1].kind.name == "EOF"


@settings(deadline=None, max_examples=300)
@given(st.text(max_size=300))
def test_parser_total_on_arbitrary_text(text):
    try:
        parse_script(text)
    except MclError:
        pass


_FRAGMENTS = [
    "streamlet", "channel", "stream", "main", "when", "connect", "disconnect",
    "insert", "remove", "replace", "new-streamlet", "new-channel",
    "{", "}", "(", ")", ";", ",", ".", ":", "=", "*", "/",
    "s1", "po", "pi", "text", "plain", "image", "LOW_BANDWIDTH",
    '"lib/x"', "100", "port", "attribute", "in", "out", "type", "STATELESS",
]


@settings(deadline=None, max_examples=300)
@given(st.lists(st.sampled_from(_FRAGMENTS), max_size=60))
def test_parser_total_on_token_soup(fragments):
    try:
        parse_script(" ".join(fragments))
    except MclError:
        pass


@settings(deadline=None, max_examples=150)
@given(st.lists(st.sampled_from(_FRAGMENTS), max_size=40))
def test_compiler_total_on_token_soup(fragments):
    source = " ".join(fragments)
    try:
        compile_script(source)
    except MobiGateError:
        pass  # MclError or a semantic error — both are the contract
