"""Model-based (stateful) testing of MessageQueue against a pure model.

Hypothesis drives random operation sequences — post, fetch, drain, close —
and after every step the real queue must agree with a trivially correct
list-based model on contents, byte accounting, and error behaviour.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.errors import QueueClosedError
from repro.runtime.message_queue import MessageQueue

CAPACITY = 500


class QueueMachine(RuleBasedStateMachine):
    """Random walk over queue operations with a reference model."""

    def __init__(self):
        super().__init__()
        self.queue = MessageQueue(CAPACITY)
        self.model: list[tuple[str, int]] = []
        self.closed = False
        self.counter = 0

    # -- operations ------------------------------------------------------------

    @rule(size=st.integers(min_value=1, max_value=200))
    def post(self, size):
        msg_id = f"m{self.counter}"
        self.counter += 1
        model_bytes = sum(s for _, s in self.model)
        expect_admit = not self.model or model_bytes + size <= CAPACITY
        if self.closed:
            with pytest.raises(QueueClosedError):
                self.queue.post_message(msg_id, size)
            return
        admitted = self.queue.post_message(msg_id, size)
        assert admitted == expect_admit
        if admitted:
            self.model.append((msg_id, size))

    @rule()
    def fetch(self):
        if self.closed and not self.model:
            with pytest.raises(QueueClosedError):
                self.queue.fetch_message()
            return
        got = self.queue.fetch_message()
        if self.model:
            expected_id, _ = self.model.pop(0)
            assert got == expected_id
        else:
            assert got is None

    @rule()
    def drain(self):
        if self.closed:
            return
        drained = self.queue.drain()
        assert drained == [msg_id for msg_id, _ in self.model]
        self.model.clear()

    @precondition(lambda self: not self.closed)
    @rule()
    def close(self):
        self.queue.close()
        self.closed = True

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def lengths_agree(self):
        assert len(self.queue) == len(self.model)

    @invariant()
    def bytes_agree(self):
        assert self.queue.pending_bytes == sum(s for _, s in self.model)

    @invariant()
    def emptiness_agrees(self):
        assert self.queue.is_empty() == (not self.model)


TestQueueStateful = QueueMachine.TestCase
TestQueueStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
