"""Property: a failed reconfiguration batch is perfectly invisible.

Hypothesis composes random action batches against the §7.2 chain, always
ending in an action guaranteed to fail mid-apply (the prefix may fail
even earlier — any failure index must behave identically).  Whatever the
batch did before dying, the rollback must leave ``snapshot_table()``,
``channel_names()``, ``processing_order()``, queue contents, instance
params, and the epoch bit-identical to the pre-commit state — under the
inline and the threaded scheduler both.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import build_server
from repro.errors import ReconfigAbortedError
from repro.faults.invariant import check_conservation
from repro.mcl import astnodes as ast
from repro.mime.message import MimeMessage
from repro.runtime.reconfig import ReconfigTransaction
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  streamlet tc = new-streamlet (text_compress);
  connect (a.po, b.pi);
  connect (b.po, c.pi);
}
"""

# actions drawn for the batch prefix: some valid against the deployed
# chain, some not — every mix must roll back cleanly
PREFIX_ACTIONS = [
    ast.NewInstances("streamlet", ("x",), "tap"),
    ast.NewInstances("streamlet", ("y",), "tap"),
    ast.NewInstances("channel", ("ch",), "defaultChannel"),
    ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
    ast.Disconnect(ast.PortRef("b", "po"), ast.PortRef("c", "pi")),
    ast.Connect(ast.PortRef("x", "po"), ast.PortRef("y", "pi")),
    ast.RemoveInstance("extract", "b"),
    ast.RemoveInstance("streamlet", "tc"),
    ast.Replace("b", "tc"),
    ast.DisconnectAll("b"),
]

#: always fails: no instance named "nosuch" exists or can exist
POISON = ast.Connect(ast.PortRef("nosuch", "po"), ast.PortRef("b", "pi"))


def fingerprint(stream):
    table = stream.snapshot_table()
    queues = {}
    seen = set()
    for name, node in sorted(stream._nodes.items()):
        for port, ch in sorted(node.inputs.items()):
            if id(ch) not in seen:
                seen.add(id(ch))
                queues[f"{name}.{port}"] = ch.queue.snapshot_state()
    return (
        sorted((n, d.name) for n, d in table.instances.items()),
        sorted(table.channels),
        sorted(str(link) for link in table.links),
        tuple(str(r) for r in table.exposed_in),
        tuple(str(r) for r in table.exposed_out),
        stream.channel_names(),
        stream.processing_order(),
        queues,
        {n: dict(stream.node(n).ctx.params) for n in sorted(stream._nodes)},
        stream.epoch,
    )


def build(parked: int):
    server = build_server(clock=VirtualClock())
    stream = server.deploy_script(SOURCE)
    scheduler = InlineScheduler(stream)
    if parked:
        stream.node("b").streamlet.pause()
        for i in range(parked):
            stream.post(MimeMessage("text/plain", f"m{i}".encode()))
        scheduler.pump()
    return stream, scheduler


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    prefix=st.lists(st.sampled_from(PREFIX_ACTIONS), max_size=4),
    parked=st.integers(min_value=0, max_value=3),
)
def test_failing_batch_is_invisible_inline(prefix, parked):
    stream, scheduler = build(parked)
    before = fingerprint(stream)
    txn = ReconfigTransaction(stream, [*prefix, POISON])
    with pytest.raises(ReconfigAbortedError):
        txn.commit(validate=False)
    assert fingerprint(stream) == before
    assert stream._txn is None
    # and the stream still works: parked messages drain, ledger balances
    if parked:
        stream.node("b").streamlet.activate()
    scheduler.pump()
    assert len(stream.collect()) == parked
    report = check_conservation(stream)
    assert report.balanced and report.lost == 0
    stream.end()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(prefix=st.lists(st.sampled_from(PREFIX_ACTIONS), max_size=3))
def test_failing_batch_is_invisible_threaded(prefix):
    server = build_server(clock=VirtualClock())
    stream = server.deploy_script(SOURCE)
    scheduler = ThreadedScheduler(stream, poll_interval=0.0005)
    scheduler.start()
    try:
        before = fingerprint(stream)
        txn = ReconfigTransaction(stream, [*prefix, POISON])
        with pytest.raises(ReconfigAbortedError):
            txn.commit(validate=False)
        assert fingerprint(stream) == before
        for i in range(3):
            stream.post(MimeMessage("text/plain", f"t{i}".encode()))
        assert scheduler.drain(timeout=10)
        assert len(stream.collect()) == 3
        report = check_conservation(stream)
        assert report.balanced and report.lost == 0
    finally:
        scheduler.stop()
        if not stream.ended:
            stream.end()
