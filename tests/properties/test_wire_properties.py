"""Property tests for the wire format over generated message trees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.imagefmt import ImageRaster
from repro.mime.message import MimeMessage
from repro.mime.wire import parse_message, serialize_message

_content_types = st.sampled_from(
    ["text/plain", "image/gif", "application/octet-stream", "text/richtext"]
)

_header_values = st.text(
    alphabet="abcXYZ019 .,-_", min_size=1, max_size=24
).filter(lambda s: s.strip())


def _leaf_messages():
    binary = st.builds(
        MimeMessage, _content_types, st.binary(max_size=512)
    )
    textual = st.builds(
        MimeMessage, st.just("text/plain"),
        st.text(alphabet="abc äöü中\n\t ", max_size=200),
    )
    raster = st.builds(
        lambda seed: MimeMessage(
            "image/gif", ImageRaster.synthetic(16, 12, seed=seed)
        ),
        st.integers(min_value=0, max_value=50),
    )
    return st.one_of(binary, textual, raster)


def _with_headers(messages):
    def attach(args):
        message, headers, peers = args
        for name, value in headers.items():
            message.headers.set(name, value)
        for peer in peers:
            message.headers.push_peer(peer)
        return message

    return st.tuples(
        messages,
        st.dictionaries(
            st.sampled_from(["X-A", "X-B", "Content-Session"]),
            _header_values, max_size=3,
        ),
        st.lists(st.sampled_from(["decryptor", "text_decompress"]), max_size=2),
    ).map(attach)


_message_tree = st.recursive(
    _with_headers(_leaf_messages()),
    lambda children: st.lists(children, min_size=1, max_size=3).map(
        MimeMessage.multipart
    ),
    max_leaves=8,
)


def _equivalent(a: MimeMessage, b: MimeMessage) -> bool:
    if a.content_type.essence != b.content_type.essence:
        return False
    if a.is_multipart != b.is_multipart:
        return False
    if a.is_multipart:
        return len(a.parts) == len(b.parts) and all(
            _equivalent(x, y) for x, y in zip(a.parts, b.parts)
        )
    if isinstance(a.body, ImageRaster):
        return isinstance(b.body, ImageRaster) and a.body == b.body
    if a.body in (None, b"") and b.body in (None, b""):
        return True
    return a.body == b.body


@settings(deadline=None, max_examples=80)
@given(_message_tree)
def test_wire_roundtrip_trees(message):
    rebuilt = parse_message(serialize_message(message))
    assert _equivalent(rebuilt, message)
    # peer stacks and sessions survive at the top level
    assert rebuilt.headers.peer_stack() == message.headers.peer_stack()
    assert rebuilt.session == message.session


@settings(deadline=None, max_examples=80)
@given(_message_tree)
def test_serialization_deterministic_sizes(message):
    # sizes must be stable across serialisations of an unchanged message
    # (boundaries are regenerated, so only compare sizes, not bytes)
    a = serialize_message(message)
    b = serialize_message(message)
    assert len(a) == len(b)
