"""Backpressure under the threaded engine (regression for lock starvation).

A producer faster than its consumer must not (a) deadlock by blocking on a
full queue while holding the topology lock — which would starve the very
consumer that frees space — nor (b) drop messages when a drop timeout
allows waiting.  The retry happens outside the lock; FIFO order survives.
"""

import time

import pytest

from repro.apps import build_server
from repro.mcl import astnodes as ast
from repro.mime.mediatype import TEXT_PLAIN
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import ThreadedScheduler
from repro.runtime.streamlet import Streamlet

DEFS = """
streamlet fastsrc{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet slowsink{
  port{ in pi : text/*; out po : text/plain; }
}
channel tiny{
  port{ in cin : text/*; out cout : text/*; }
  attribute{ buffer = 1; }
}
"""

SOURCE = DEFS + """
main stream squeeze{
  streamlet a = new-streamlet (fastsrc);
  streamlet b = new-streamlet (slowsink);
  channel t = new-channel (tiny);
  connect (a.po, b.pi, t);
}
"""


class Fast(Streamlet):
    """Forwards immediately."""

    def process(self, port, message, ctx):
        return [("po", message)]


class Slow(Streamlet):
    """Simulates heavy per-message service time."""

    def process(self, port, message, ctx):
        time.sleep(0.002)
        return [("po", message)]


def deploy(drop_timeout):
    server = build_server(drop_timeout=drop_timeout)
    from repro.mcl.parser import parse_script

    for d in parse_script(DEFS).streamlets:
        server.directory.advertise(d, Fast if d.name == "fastsrc" else Slow)
    return server, server.deploy_script(SOURCE)


class TestBackpressure:
    def test_no_loss_with_drop_timeout(self):
        _server, stream = deploy(drop_timeout=5.0)
        scheduler = ThreadedScheduler(stream, poll_interval=0.0002)
        scheduler.start()
        try:
            payloads = [f"burst-{i}".encode() * 40 for i in range(30)]
            for payload in payloads:  # far more than the 1 KB channel holds
                stream.post(MimeMessage(TEXT_PLAIN, payload))
            assert scheduler.drain(timeout=30)
            bodies = [m.body for m in stream.collect()]
        finally:
            scheduler.stop()
            stream.end()
        # nothing dropped, FIFO order intact, no deadlock
        assert bodies == payloads
        assert stream.stats.queue_drops == 0

    def test_drops_when_timeout_zero(self):
        _server, stream = deploy(drop_timeout=0.0)
        scheduler = ThreadedScheduler(stream, poll_interval=0.0002)
        scheduler.start()
        try:
            for i in range(30):
                stream.post(MimeMessage(TEXT_PLAIN, f"b{i}".encode() * 60))
            scheduler.drain(timeout=30)
            delivered = stream.collect()
        finally:
            scheduler.stop()
            stream.end()
        # Figure 6-9 policy: the fast producer drops instead of stalling
        assert stream.stats.queue_drops > 0
        assert len(delivered) + stream.stats.queue_drops == 30
        assert len(stream.pool) == 0  # dropped messages were released
