import pytest

from repro.errors import ChannelError
from repro.mcl import astnodes as ast
from repro.runtime.channel import Channel


def make_def(sync="ASYNC", category="BK", buffer_kb=1):
    return ast.ChannelDef(
        name="c",
        in_port=ast.PortDecl(ast.PortDirection.IN, "cin", _any()),
        out_port=ast.PortDecl(ast.PortDirection.OUT, "cout", _any()),
        sync=ast.ChannelSync(sync),
        category=ast.ChannelCategory(category),
        buffer_kb=buffer_kb,
    )


def _any():
    from repro.mime.mediatype import ANY

    return ANY


def wired(sync="ASYNC", category="BK", buffer_kb=1):
    ch = Channel("c0", make_def(sync, category, buffer_kb))
    ch.attach_source(ast.PortRef("a", "po"))
    ch.attach_sink(ast.PortRef("b", "pi"))
    return ch


class TestWiring:
    def test_attach(self):
        ch = wired()
        assert ch.source == ast.PortRef("a", "po")
        assert ch.sink == ast.PortRef("b", "pi")
        assert ch.queue.producer_count == 1
        assert ch.queue.consumer_count == 1

    def test_double_attach_rejected(self):
        ch = wired()
        with pytest.raises(ChannelError):
            ch.attach_source(ast.PortRef("x", "po"))
        with pytest.raises(ChannelError):
            ch.attach_sink(ast.PortRef("x", "pi"))

    def test_detach_without_attach(self):
        ch = Channel("c", make_def())
        with pytest.raises(ChannelError):
            ch.detach_source()
        with pytest.raises(ChannelError):
            ch.detach_sink()


class TestTransfer:
    def test_post_fetch(self):
        ch = wired()
        ch.post("m1", 10)
        assert ch.fetch() == "m1"

    def test_capacity_from_buffer_kb(self):
        ch = wired(buffer_kb=1)  # 1024 bytes
        assert ch.post("a", 800)
        assert not ch.post("b", 800)

    def test_sync_is_rendezvous(self):
        ch = wired(sync="SYNC", buffer_kb=0)
        assert ch.is_sync
        assert ch.post("a", 5)
        assert not ch.post("b", 5)
        ch.fetch()
        assert ch.post("b", 5)


class TestCategories:
    def test_bk_detach_source_keeps_pending(self):
        ch = wired(category="BK")
        ch.post("m", 1)
        dropped = ch.detach_source()
        assert dropped == []
        assert ch.sink is not None
        assert ch.fetch() == "m"

    def test_bk_detach_sink_breaks_both(self):
        ch = wired(category="BK")
        ch.post("m", 1)
        dropped = ch.detach_sink()
        assert dropped == ["m"]
        assert ch.source is None and ch.sink is None

    def test_kb_detach_sink_keeps_source(self):
        ch = wired(category="KB")
        dropped = ch.detach_sink()
        assert dropped == []
        assert ch.source is not None

    def test_kb_detach_source_breaks_both(self):
        ch = wired(category="KB")
        ch.post("m", 1)
        dropped = ch.detach_source()
        assert dropped == ["m"]
        assert ch.sink is None

    def test_bb_breaks_both_ways(self):
        for detach in ("detach_source", "detach_sink"):
            ch = wired(category="BB")
            ch.post("m", 1)
            dropped = getattr(ch, detach)()
            assert dropped == ["m"]
            assert ch.source is None and ch.sink is None

    def test_kk_cannot_detach(self):
        ch = wired(category="KK")
        with pytest.raises(ChannelError):
            ch.detach_source()
        with pytest.raises(ChannelError):
            ch.detach_sink()

    def test_s_never_buffers(self):
        ch = wired(category="S")
        # S forces a rendezvous slot even when declared ASYNC
        assert ch.post("a", 5)
        assert not ch.post("b", 5)

    def test_s_detach_with_pending_rejected(self):
        ch = wired(category="S")
        ch.post("a", 5)
        with pytest.raises(ChannelError):
            ch.detach_source()

    def test_s_detach_empty_ok(self):
        ch = wired(category="S")
        assert ch.detach_source() == []


class TestReattach:
    def test_reattach_source_keeps_pending(self):
        ch = wired(category="BB")  # even BB: reattach bypasses category
        ch.post("m", 1)
        ch.reattach_source(ast.PortRef("new", "po"))
        assert ch.source == ast.PortRef("new", "po")
        assert ch.fetch() == "m"

    def test_reattach_sink(self):
        ch = wired()
        ch.reattach_sink(ast.PortRef("new", "pi"))
        assert ch.sink == ast.PortRef("new", "pi")

    def test_reattach_onto_empty_end(self):
        ch = Channel("c", make_def())
        ch.reattach_source(ast.PortRef("a", "po"))
        assert ch.queue.producer_count == 1
