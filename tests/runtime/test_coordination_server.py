"""Tests for the Coordination Manager and the server facade."""

import pytest

from repro.apps import build_server
from repro.errors import CompositionError, MobiGateError, OpenCircuitError
from repro.events import EventCategory
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler
from repro.runtime.server import MobiGateServer
from repro.runtime.streamlet import Streamlet

DEFS = """
streamlet up{
  port{ in pi : text/*; out po : text/plain; }
}
"""

PIPE = DEFS + """
main stream pipe{
  streamlet a, b = new-streamlet (up);
  connect (a.po, b.pi);
  when (LOW_BANDWIDTH){ disconnect (a.po, b.pi); }
}
"""


class Upper(Streamlet):
    def process(self, port, message, ctx):
        message.set_body(message.body.upper())
        return [("po", message)]


class Faulty(Streamlet):
    def process(self, port, message, ctx):
        raise ValueError("kaboom")


def make_server(factory=Upper):
    server = build_server()
    from repro.mcl.parser import parse_script

    for d in parse_script(DEFS).streamlets:
        server.directory.advertise(d, factory)
    return server


class TestCoordinationManager:
    def test_deploy_assigns_unique_sessions(self):
        # section 4.4.3: each stream instance gets its own session id
        source = DEFS + (
            "stream one{ streamlet a = new-streamlet (up); }"
            "stream two{ streamlet b = new-streamlet (up); }"
        )
        server = make_server()
        s1 = server.deploy_script(source, stream="one")
        s2 = server.deploy_script(source, stream="two")
        assert s1.session is not None
        assert s1.session != s2.session

    def test_duplicate_deploy_rejected(self):
        server = make_server()
        table = server.compile(PIPE).main_table()
        server.deploy_table(table)
        with pytest.raises(CompositionError):
            server.deploy_table(table)

    def test_undeploy_allows_redeploy(self):
        server = make_server()
        stream = server.deploy_script(PIPE)
        server.undeploy(stream.name)
        assert stream.ended
        server.deploy_script(PIPE)  # same name fine after undeploy

    def test_undeploy_unknown(self):
        with pytest.raises(CompositionError):
            make_server().undeploy("ghost")

    def test_subscription_matches_handlers(self):
        server = make_server()
        server.deploy_script(PIPE)
        assert server.events.subscriber_count(EventCategory.NETWORK_VARIATION) == 1
        assert server.events.subscriber_count(EventCategory.HARDWARE_VARIATION) == 0

    def test_undeploy_unsubscribes(self):
        server = make_server()
        stream = server.deploy_script(PIPE)
        server.undeploy(stream.name)
        assert server.events.subscriber_count(EventCategory.NETWORK_VARIATION) == 0

    def test_stream_lookup(self):
        server = make_server()
        stream = server.deploy_script(PIPE)
        assert server.coordination.stream("pipe") is stream
        assert server.coordination.deployed() == ["pipe"]
        assert len(server.coordination) == 1


class TestServerFacade:
    def test_deploy_named_stream(self):
        source = DEFS + "stream one{ streamlet a = new-streamlet (up); }" \
                        "stream two{ streamlet b = new-streamlet (up); }"
        server = make_server()
        stream = server.deploy_script(source, stream="two")
        assert stream.name == "two"

    def test_deploy_unknown_stream_name(self):
        server = make_server()
        with pytest.raises(MobiGateError):
            server.deploy_script(PIPE, stream="nope")

    def test_verification_gate(self):
        # a composition that drops messages: up feeding nothing, with an
        # explicitly terminal-less chain; exposed ports make this legal by
        # default, so force the strict view through a terminal-less cycle
        source = DEFS + """
main stream looped{
  streamlet a, b = new-streamlet (up);
  connect (a.po, b.pi);
  connect (b.po, a.pi);
}
"""
        server = make_server()
        from repro.errors import FeedbackLoopError

        with pytest.raises(FeedbackLoopError):
            server.deploy_script(source)

    def test_verification_can_be_disabled(self):
        source = DEFS + """
main stream looped{
  streamlet a, b = new-streamlet (up);
  connect (a.po, b.pi);
  connect (b.po, a.pi);
}
"""
        server = build_server(verify_semantics=False)
        from repro.mcl.parser import parse_script

        for d in parse_script(DEFS).streamlets:
            server.directory.advertise(d, Upper)
        stream = server.deploy_script(source)  # deploys despite the loop
        assert stream.started


class TestFaultContainment:
    def test_faulty_streamlet_drops_message_and_raises_event(self):
        server = make_server(Faulty)
        stream = server.deploy_script(PIPE)
        scheduler = InlineScheduler(stream)

        faults = []

        class FaultWatcher:
            name = "watcher"

            def on_event(self, event):
                faults.append(event)

        server.events.subscribe(EventCategory.SOFTWARE_VARIATION, FaultWatcher())

        stream.post(MimeMessage("text/plain", b"boom"))
        scheduler.pump()
        assert stream.collect() == []
        assert stream.stats.processing_failures == 1
        assert len(stream.pool) == 0  # message released, not leaked
        # STREAMLET_FAULT raised, scoped to the faulting stream...
        # (our watcher has a different name, so the scoped event skipped it;
        #  verify via the manager's counters instead)
        assert server.events.filtered >= 1

    def test_stream_survives_faults(self):
        server = make_server(Faulty)
        stream = server.deploy_script(PIPE)
        scheduler = InlineScheduler(stream)
        for i in range(5):
            stream.post(MimeMessage("text/plain", f"m{i}".encode()))
        scheduler.pump()
        assert stream.stats.processing_failures == 5
        assert not stream.ended  # still alive and schedulable


class TestControlInterface:
    def test_set_param_affects_processing(self):
        """§8.2.1: the coordinator tunes streamlet behaviour via parameters."""
        server = build_server()
        stream = server.deploy_script("""
main stream tunable{
  streamlet ds = new-streamlet (img_down_sample);
}
""")
        scheduler = InlineScheduler(stream)
        from repro.codecs.imagefmt import decode_gif
        from repro.workloads.content import synthetic_image_message

        stream.set_param("ds", "factor", 4)
        assert stream.get_param("ds", "factor") == 4
        stream.post(synthetic_image_message(64, 64, seed=1))
        scheduler.pump()
        [out] = stream.collect()
        assert decode_gif(out.body).width == 16  # 64 / 4

    def test_get_param_default(self):
        server = build_server()
        stream = server.deploy_script(
            "main stream t{ streamlet r = new-streamlet (redirector); }"
        )
        assert stream.get_param("r", "missing", "fallback") == "fallback"

    def test_unknown_instance(self):
        server = build_server()
        stream = server.deploy_script(
            "main stream t{ streamlet r = new-streamlet (redirector); }"
        )
        with pytest.raises(CompositionError):
            stream.set_param("ghost", "k", 1)
