import pytest

from repro.errors import DirectoryError
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.runtime.directory import StreamletDirectory
from repro.runtime.pool import InstancePool
from repro.runtime.streamlet import ForwardingStreamlet, Streamlet
from repro.runtime.streamlet_manager import StreamletManager


def make_def(name="svc", kind=ast.StreamletKind.STATELESS):
    return ast.StreamletDef(
        name=name,
        ports=(
            ast.PortDecl(ast.PortDirection.IN, "pi", ANY),
            ast.PortDecl(ast.PortDirection.OUT, "po", ANY),
        ),
        kind=kind,
    )


class Custom(Streamlet):
    pass


class TestDirectory:
    def test_advertise_and_create(self):
        d = StreamletDirectory()
        d.advertise(make_def(), Custom)
        inst = d.create("svc", "i1")
        assert isinstance(inst, Custom)
        assert inst.instance_id == "i1"

    def test_default_factory_is_forwarder(self):
        d = StreamletDirectory()
        d.advertise(make_def())
        assert isinstance(d.create("svc", "i1"), ForwardingStreamlet)

    def test_duplicate_advertise_rejected(self):
        d = StreamletDirectory()
        d.advertise(make_def())
        with pytest.raises(DirectoryError):
            d.advertise(make_def())

    def test_replace_allowed(self):
        d = StreamletDirectory()
        d.advertise(make_def())
        d.advertise(make_def(), Custom, replace=True)
        assert isinstance(d.create("svc", "i"), Custom)

    def test_withdraw(self):
        d = StreamletDirectory()
        d.advertise(make_def())
        d.withdraw("svc")
        assert "svc" not in d
        with pytest.raises(DirectoryError):
            d.withdraw("svc")

    def test_unknown_lookup(self):
        d = StreamletDirectory()
        with pytest.raises(DirectoryError):
            d.definition("ghost")
        with pytest.raises(DirectoryError):
            d.create("ghost", "i")

    def test_bad_factory_return(self):
        d = StreamletDirectory()
        d.advertise(make_def(), lambda _id, _d: object())  # type: ignore[arg-type]
        with pytest.raises(DirectoryError):
            d.create("svc", "i")

    def test_factory_fallback_for_unadvertised(self):
        d = StreamletDirectory()
        assert d.factory_for(make_def("never_seen")) is ForwardingStreamlet

    def test_definitions_snapshot(self):
        d = StreamletDirectory()
        d.advertise(make_def("a"))
        d.advertise(make_def("b"))
        assert set(d.definitions()) == {"a", "b"}


class TestInstancePool:
    def test_miss_then_hit(self):
        pool = InstancePool(lambda iid: Streamlet(iid, make_def()))
        first = pool.acquire("i1")
        assert pool.misses == 1
        pool.release(first)
        second = pool.acquire("i2")
        assert second is first
        assert second.instance_id == "i2"
        assert pool.hits == 1

    def test_max_idle_discards(self):
        pool = InstancePool(lambda iid: Streamlet(iid, make_def()), max_idle=1)
        a, b = pool.acquire("a"), pool.acquire("b")
        pool.release(a)
        pool.release(b)
        assert pool.idle_count == 1
        assert pool.discarded == 1

    def test_negative_max_idle_rejected(self):
        with pytest.raises(ValueError):
            InstancePool(lambda iid: Streamlet(iid, make_def()), max_idle=-1)


class TestStreamletManager:
    def setup_method(self):
        self.directory = StreamletDirectory()
        self.directory.advertise(make_def("stateless"))
        self.directory.advertise(make_def("stateful", kind=ast.StreamletKind.STATEFUL))

    def test_stateless_instances_pooled(self):
        mgr = StreamletManager(self.directory, pooling=True)
        a = mgr.acquire("i1", self.directory.definition("stateless"))
        mgr.release(a)
        b = mgr.acquire("i2", self.directory.definition("stateless"))
        assert b is a
        assert mgr.created == 1

    def test_stateful_never_pooled(self):
        mgr = StreamletManager(self.directory, pooling=True)
        a = mgr.acquire("i1", self.directory.definition("stateful"))
        mgr.release(a)
        b = mgr.acquire("i2", self.directory.definition("stateful"))
        assert b is not a
        assert mgr.created == 2

    def test_pooling_disabled(self):
        mgr = StreamletManager(self.directory, pooling=False)
        a = mgr.acquire("i1", self.directory.definition("stateless"))
        mgr.release(a)
        b = mgr.acquire("i2", self.directory.definition("stateless"))
        assert b is not a
        assert mgr.created == 2

    def test_pool_stats(self):
        mgr = StreamletManager(self.directory, pooling=True)
        inst = mgr.acquire("i1", self.directory.definition("stateless"))
        mgr.release(inst)
        mgr.acquire("i2", self.directory.definition("stateless"))
        stats = mgr.pool_stats()["stateless"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1
