import pytest

from repro.errors import EventError
from repro.events import (
    DEFAULT_CATALOG,
    PREDEFINED_EVENTS,
    ContextEvent,
    EventCatalog,
    EventCategory,
)
from repro.runtime.events import EventManager


class Recorder:
    def __init__(self, name):
        self.name = name
        self.seen = []

    def on_event(self, event):
        self.seen.append(event)


class TestCatalog:
    def test_table_6_1_taxonomy(self):
        """Table 6-1: four categories with the thesis's named events."""
        assert set(EventCategory) == {
            EventCategory.SYSTEM_COMMAND,
            EventCategory.NETWORK_VARIATION,
            EventCategory.HARDWARE_VARIATION,
            EventCategory.SOFTWARE_VARIATION,
        }
        assert PREDEFINED_EVENTS["PAUSE"] is EventCategory.SYSTEM_COMMAND
        assert PREDEFINED_EVENTS["RESUME"] is EventCategory.SYSTEM_COMMAND
        assert PREDEFINED_EVENTS["END"] is EventCategory.SYSTEM_COMMAND
        assert PREDEFINED_EVENTS["LOW_BANDWIDTH"] is EventCategory.NETWORK_VARIATION
        assert PREDEFINED_EVENTS["LOW_ENERGY"] is EventCategory.HARDWARE_VARIATION
        assert PREDEFINED_EVENTS["LOW_GRAYS"] is EventCategory.HARDWARE_VARIATION

    def test_low_gray_alias(self):
        # Figure 4-8 writes LOW_GRAY; Table 6-1 says LOW_GRAYS
        assert DEFAULT_CATALOG.canonical("LOW_GRAY") == "LOW_GRAYS"
        assert "LOW_GRAY" in DEFAULT_CATALOG

    def test_case_insensitive(self):
        assert "low_bandwidth" in DEFAULT_CATALOG

    def test_unknown_event(self):
        assert "UNHEARD_OF" not in DEFAULT_CATALOG
        with pytest.raises(EventError):
            DEFAULT_CATALOG.category_of("UNHEARD_OF")

    def test_register_custom(self):
        catalog = EventCatalog()
        catalog.register("ROAMING", EventCategory.NETWORK_VARIATION)
        assert catalog.category_of("ROAMING") is EventCategory.NETWORK_VARIATION

    def test_register_conflicting_category_rejected(self):
        catalog = EventCatalog()
        with pytest.raises(EventError):
            catalog.register("PAUSE", EventCategory.NETWORK_VARIATION)

    def test_register_same_category_idempotent(self):
        catalog = EventCatalog()
        catalog.register("PAUSE", EventCategory.SYSTEM_COMMAND)

    def test_illegal_name(self):
        with pytest.raises(EventError):
            EventCatalog().register("BAD NAME!", EventCategory.SYSTEM_COMMAND)

    def test_make_event(self):
        evt = DEFAULT_CATALOG.make("low_gray", source="app1")
        assert evt == ContextEvent("LOW_GRAYS", EventCategory.HARDWARE_VARIATION, "app1")


class TestEventManager:
    def test_multicast_to_category(self):
        mgr = EventManager()
        net = Recorder("net-app")
        hw = Recorder("hw-app")
        mgr.subscribe(EventCategory.NETWORK_VARIATION, net)
        mgr.subscribe(EventCategory.HARDWARE_VARIATION, hw)
        delivered = mgr.raise_event("LOW_BANDWIDTH")
        assert delivered == 1
        assert len(net.seen) == 1
        assert hw.seen == []

    def test_scoped_event_filters_by_source(self):
        mgr = EventManager()
        a, b = Recorder("a"), Recorder("b")
        mgr.subscribe(EventCategory.SYSTEM_COMMAND, a)
        mgr.subscribe(EventCategory.SYSTEM_COMMAND, b)
        mgr.raise_event("END", source="a")
        assert len(a.seen) == 1
        assert b.seen == []
        assert mgr.filtered == 1

    def test_broadcast_reaches_all(self):
        mgr = EventManager()
        subs = [Recorder(f"s{i}") for i in range(3)]
        for s in subs:
            mgr.subscribe(EventCategory.SYSTEM_COMMAND, s)
        assert mgr.raise_event("PAUSE") == 3

    def test_double_subscribe_rejected(self):
        mgr = EventManager()
        r = Recorder("r")
        mgr.subscribe(EventCategory.SYSTEM_COMMAND, r)
        with pytest.raises(EventError):
            mgr.subscribe(EventCategory.SYSTEM_COMMAND, r)

    def test_unsubscribe(self):
        mgr = EventManager()
        r = Recorder("r")
        mgr.subscribe(EventCategory.SYSTEM_COMMAND, r)
        mgr.unsubscribe(EventCategory.SYSTEM_COMMAND, r)
        assert mgr.raise_event("END") == 0
        with pytest.raises(EventError):
            mgr.unsubscribe(EventCategory.SYSTEM_COMMAND, r)

    def test_unknown_event_raises(self):
        with pytest.raises(EventError):
            EventManager().raise_event("NOT_AN_EVENT")

    def test_subscriber_count(self):
        mgr = EventManager()
        assert mgr.subscriber_count(EventCategory.NETWORK_VARIATION) == 0
        mgr.subscribe(EventCategory.NETWORK_VARIATION, Recorder("x"))
        assert mgr.subscriber_count(EventCategory.NETWORK_VARIATION) == 1
