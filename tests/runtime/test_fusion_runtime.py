"""Fused-chain runtime behaviour: fidelity, faults, reconfig, both schedulers."""

import time

import pytest

from repro.apps import build_server
from repro.bench.harness import redirector_chain_mcl
from repro.faults.invariant import assert_conservation
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.runtime.streamlet import Streamlet, StreamletContext
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.attribution import summarize

SYNC_DEFS = """channel syncChan{
  port{ in cin : */*; out cout : */*; }
  attribute{ type = SYNC; buffer = 0; }
}
"""

# four fusable redirectors plus a dormant spare for splice tests
SPLICE_MCL = SYNC_DEFS + """main stream fz{
  streamlet r0, r1, r2, r3, extra = new-streamlet (redirector);
  channel s0, s1, s2 = new-channel (syncChan);
  connect (r0.po, r1.pi, s0);
  connect (r1.po, r2.pi, s1);
  connect (r2.po, r3.pi, s2);
}"""

ENGINES = ("inline", "threaded")


def make_scheduler(stream, engine, **kwargs):
    if engine == "inline":
        return InlineScheduler(stream, **kwargs)
    scheduler = ThreadedScheduler(stream, **kwargs)
    scheduler.start()
    return scheduler


def drain(stream, scheduler, n, timeout=5.0):
    """Collect until ``n`` messages arrive (pumping when inline)."""
    out = []
    deadline = time.monotonic() + timeout
    while len(out) < n and time.monotonic() < deadline:
        if isinstance(scheduler, InlineScheduler):
            scheduler.pump()
        out.extend(stream.collect())
        if len(out) < n:
            time.sleep(0.002)
    return out


def stop(scheduler):
    if isinstance(scheduler, ThreadedScheduler):
        scheduler.stop()


PASS_DEF = ast.StreamletDef(
    name="fz_pass",
    ports=(
        ast.PortDecl(ast.PortDirection.IN, "pi", ANY),
        ast.PortDecl(ast.PortDirection.OUT, "po", ANY),
    ),
)

class Duplicator(Streamlet):
    """Emit every message twice — exercises the multi-emission worklist."""

    def process(self, port, message, ctx: StreamletContext):
        return [("po", message), ("po", message.clone())]


class Absorber(Streamlet):
    """Swallow messages whose body starts with ``drop``."""

    def process(self, port, message, ctx: StreamletContext):
        if message.body.startswith(b"drop"):
            return []
        return [("po", message)]


class Poisoned(Streamlet):
    """Raise on bodies starting with ``boom`` — mid-chain failure containment."""

    def process(self, port, message, ctx: StreamletContext):
        if message.body.startswith(b"boom"):
            raise RuntimeError("poisoned payload")
        return [("po", message)]


class Sidestep(Streamlet):
    """Route ``side``-tagged bodies to a port with no channel (open circuit).

    A *declared* spare port would be auto-exposed as egress at deploy
    time; emitting on an unknown port is how a runtime open circuit
    actually looks (e.g. after a reconfiguration unwired it).
    """

    def process(self, port, message, ctx: StreamletContext):
        if message.body.startswith(b"side"):
            return [("nowhere", message)]
        return [("po", message)]


def deploy_custom(middle_def, middle_cls, **server_kwargs):
    """redirector -> <middle> -> redirector, all synchronously coupled."""
    server = build_server(drop_timeout=5.0, **server_kwargs)
    server.directory.advertise(middle_def, middle_cls, replace=True)
    mcl = SYNC_DEFS + (
        "main stream fz{"
        "  streamlet a, z = new-streamlet (redirector);"
        f"  streamlet mid = new-streamlet ({middle_def.name});"
        "  channel s0, s1 = new-channel (syncChan);"
        "  connect (a.po, mid.pi, s0);"
        "  connect (mid.po, z.pi, s1);"
        "}"
    )
    return server, server.deploy_script(mcl)


class TestFusedDelivery:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_sync_chain_fuses_and_preserves_order(self, engine):
        server = build_server(drop_timeout=5.0)
        stream = server.deploy_script(redirector_chain_mcl(6, sync=True))
        assert stream.fusion_groups() == (tuple(f"r{i}" for i in range(6)),)
        scheduler = make_scheduler(stream, engine)
        try:
            n = 40
            for i in range(n):
                stream.post(MimeMessage("text/plain", b"m%03d" % i))
            delivered = drain(stream, scheduler, n)
            assert [m.body for m in delivered] == [b"m%03d" % i for i in range(n)]
            assert_conservation(stream)
        finally:
            stop(scheduler)
            stream.end()

    def test_async_chain_does_not_fuse(self):
        server = build_server(drop_timeout=5.0)
        stream = server.deploy_script(redirector_chain_mcl(4))
        try:
            assert stream.fusion_groups() == ()
        finally:
            stream.end()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fuse_false_ablation_matches_fused_output(self, engine):
        bodies = [b"p%d" % i for i in range(12)]
        results = {}
        for fuse in (True, False):
            server = build_server(fuse=fuse, drop_timeout=5.0)
            stream = server.deploy_script(redirector_chain_mcl(5, sync=True))
            assert bool(stream.fusion_groups()) is fuse
            scheduler = make_scheduler(stream, engine)
            try:
                for body in bodies:
                    stream.post(MimeMessage("text/plain", body))
                results[fuse] = [m.body for m in drain(stream, scheduler, len(bodies))]
                assert_conservation(stream)
            finally:
                stop(scheduler)
                stream.end()
        assert results[True] == results[False] == bodies

    def test_fused_service_time_stays_per_streamlet(self):
        # the fused dispatch must not collapse attribution: every member
        # keeps its own service histogram, one observation per message
        telemetry = Telemetry(registry=MetricsRegistry(), trace_sample_interval=1)
        server = build_server(telemetry=telemetry, drop_timeout=5.0)
        stream = server.deploy_script(redirector_chain_mcl(4, sync=True))
        scheduler = InlineScheduler(stream)
        try:
            n = 8
            for i in range(n):
                stream.post(MimeMessage("text/plain", b"x"))
            assert len(drain(stream, scheduler, n)) == n
            rows = summarize(telemetry.registry, stream=stream.name)["service"]["rows"]
            per_instance = {r["instance"]: r["count"] for r in rows}
            assert per_instance == {f"r{i}": n for i in range(4)}
        finally:
            stream.end()


class TestFusedSemantics:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_multi_emission_member_fans_out_in_order(self, engine):
        _server, stream = deploy_custom(PASS_DEF, Duplicator)
        assert stream.fusion_groups() == (("a", "mid", "z"),)
        scheduler = make_scheduler(stream, engine)
        try:
            n = 6
            for i in range(n):
                stream.post(MimeMessage("text/plain", b"d%d" % i))
            delivered = drain(stream, scheduler, 2 * n)
            assert [m.body for m in delivered] == [
                b"d%d" % i for i in range(n) for _ in range(2)
            ]
            assert_conservation(stream)
        finally:
            stop(scheduler)
            stream.end()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_absorbed_messages_balance_the_ledger(self, engine):
        _server, stream = deploy_custom(PASS_DEF, Absorber)
        scheduler = make_scheduler(stream, engine)
        try:
            for i in range(10):
                body = b"drop%d" % i if i % 2 else b"keep%d" % i
                stream.post(MimeMessage("text/plain", body))
            delivered = drain(stream, scheduler, 5)
            assert [m.body for m in delivered] == [b"keep%d" % i for i in (0, 2, 4, 6, 8)]
            report = assert_conservation(stream)
            assert report.absorbed == 5
        finally:
            stop(scheduler)
            stream.end()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mid_chain_failure_is_contained(self, engine):
        _server, stream = deploy_custom(PASS_DEF, Poisoned)
        scheduler = make_scheduler(stream, engine)
        try:
            for i in range(6):
                body = b"boom%d" % i if i in (1, 4) else b"ok%d" % i
                stream.post(MimeMessage("text/plain", body))
            delivered = drain(stream, scheduler, 4)
            assert len(delivered) == 4
            report = assert_conservation(stream)
            assert report.failure_drops == 2
        finally:
            stop(scheduler)
            stream.end()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_open_circuit_mid_chain_drops_like_unfused(self, engine):
        _server, stream = deploy_custom(PASS_DEF, Sidestep)
        assert stream.fusion_groups() == (("a", "mid", "z"),)
        scheduler = make_scheduler(stream, engine)
        try:
            for i in range(6):
                body = b"side%d" % i if i in (0, 3) else b"ok%d" % i
                stream.post(MimeMessage("text/plain", body))
            delivered = drain(stream, scheduler, 4)
            assert len(delivered) == 4
            report = assert_conservation(stream)
            assert report.open_circuit_drops == 2
        finally:
            stop(scheduler)
            stream.end()

    def test_residual_interior_traffic_drains_first(self):
        # a message parked on an interior channel (e.g. a supervisor retry
        # from before fusion formed) must drain ahead of fresh head traffic
        server = build_server(drop_timeout=5.0)
        stream = server.deploy_script(redirector_chain_mcl(4, sync=True))
        scheduler = InlineScheduler(stream)
        try:
            early = stream.post(MimeMessage("text/plain", b"early"))
            ingress = next(iter(stream.ingress.values()))
            assert ingress.fetch(0.0) == early
            # park it two hops deep, then feed a fresh message at the head
            assert stream.channel("s1").queue.post_message(early, 5, timeout=0)
            stream.post(MimeMessage("text/plain", b"fresh"))
            delivered = drain(stream, scheduler, 2)
            assert [m.body for m in delivered] == [b"early", b"fresh"]
            assert_conservation(stream)
        finally:
            stream.end()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("batch", (1, 4))
    def test_batching_delivers_everything(self, engine, batch):
        server = build_server(drop_timeout=5.0)
        stream = server.deploy_script(redirector_chain_mcl(4, sync=True))
        scheduler = make_scheduler(stream, engine, batch=batch)
        try:
            n = 30
            for i in range(n):
                stream.post(MimeMessage("text/plain", b"b%02d" % i))
            delivered = drain(stream, scheduler, n)
            assert [m.body for m in delivered] == [b"b%02d" % i for i in range(n)]
            assert_conservation(stream)
        finally:
            stop(scheduler)
            stream.end()


class TestFusedReconfig:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_splice_splits_then_refuses(self, engine):
        server = build_server(drop_timeout=5.0)
        stream = server.deploy_script(SPLICE_MCL)
        assert stream.fusion_groups() == (("r0", "r1", "r2", "r3"),)
        scheduler = make_scheduler(stream, engine)
        try:
            for i in range(10):
                stream.post(MimeMessage("text/plain", b"a%d" % i))
            assert len(drain(stream, scheduler, 10)) == 10

            # splice into the middle: the fresh producer-side auto channel
            # is asynchronous, so the region must split around it
            stream.insert("r1.po", "r2.pi", "extra")
            assert stream.fusion_groups() == (("r0", "r1"), ("extra", "r2", "r3"))
            for i in range(10):
                stream.post(MimeMessage("text/plain", b"b%d" % i))
            assert len(drain(stream, scheduler, 10)) == 10

            # take the spare back out and rejoin through the declared sync
            # channel: the whole chain re-fuses on the next snapshot
            stream.disconnect("r1.po", "extra.pi")
            stream.disconnect("extra.po", "r2.pi")
            stream.connect("r1.po", "r2.pi", "s1")
            assert stream.fusion_groups() == (("r0", "r1", "r2", "r3"),)
            for i in range(10):
                stream.post(MimeMessage("text/plain", b"c%d" % i))
            assert len(drain(stream, scheduler, 10)) == 10
            assert_conservation(stream)
        finally:
            stop(scheduler)
            stream.end()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_extract_handler_keeps_member_out_of_groups(self, engine):
        # an instance an event handler may extract is never fused, so the
        # extract itself cannot land inside a fused dispatch
        mcl = SYNC_DEFS + """main stream fz{
  streamlet r0, r1, r2 = new-streamlet (redirector);
  channel s0, s1 = new-channel (syncChan);
  connect (r0.po, r1.pi, s0);
  connect (r1.po, r2.pi, s1);
  when (LOW_BANDWIDTH) { remove (r1); }
}"""
        server = build_server(drop_timeout=5.0)
        stream = server.deploy_script(mcl)
        scheduler = make_scheduler(stream, engine)
        try:
            assert stream.fusion_groups() == ()
            for i in range(5):
                stream.post(MimeMessage("text/plain", b"x%d" % i))
            assert len(drain(stream, scheduler, 5)) == 5
            assert_conservation(stream)
        finally:
            stop(scheduler)
            stream.end()
