"""Regression tests for the message-lifecycle leak sweep.

Each test pins one fixed bug:

* ``RuntimeStream.end()`` never closed the egress carriers, leaking the
  pool entries (and traced-id/enqueued map entries) of uncollected
  deliveries;
* the ingress drop path in ``RuntimeStream.post()`` released the pool
  entry but never told telemetry to forget the id, so sustained ingress
  pressure leaked the traced-id set;
* ``MessageQueue.post_message`` burned its whole wait budget on the first
  spurious wakeup (single ``cond.wait`` instead of a deadline loop);
* the ThreadedScheduler's stall-retry drop path at ``drop_timeout=0``
  must release every dropped id and fire the drop signal.
"""

import threading
import time

import pytest

from repro.apps import build_server
from repro.faults import check_conservation
from repro.mcl.parser import parse_script
from repro.mime.mediatype import TEXT_PLAIN
from repro.mime.message import MimeMessage
from repro.runtime.message_queue import MessageQueue
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.runtime.streamlet import Streamlet
from repro.telemetry import Telemetry
from repro.telemetry.metrics import MetricsRegistry

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a, b = new-streamlet (tap);
  connect (a.po, b.pi);
}
"""


def traced_server():
    """A server whose telemetry traces every message (interval=1)."""
    return build_server(
        telemetry=Telemetry(registry=MetricsRegistry(), trace_sample_interval=1)
    )


class TestEndClosesEgress:
    def test_uncollected_deliveries_are_released(self):
        server = traced_server()
        stream = server.deploy_script(SOURCE)
        scheduler = InlineScheduler(stream)
        for i in range(3):
            stream.post(MimeMessage(TEXT_PLAIN, f"d{i}".encode()))
        scheduler.pump()
        # messages fully processed but never collect()ed: they sit in the
        # egress carriers, still owning pool entries
        assert len(stream.pool) == 3
        stream.end()
        assert len(stream.pool) == 0
        assert stream.stats.end_drops == 3
        # telemetry's per-id maps were shed too
        assert not stream.tm.traced_ids
        assert not stream.tm.enqueued

    def test_egress_queues_are_closed(self):
        server = traced_server()
        stream = server.deploy_script(SOURCE)
        stream.end()
        for _ref, channel in stream.egress:
            assert channel.queue.closed

    def test_end_is_idempotent(self):
        server = traced_server()
        stream = server.deploy_script(SOURCE)
        stream.post(MimeMessage(TEXT_PLAIN, b"x"))
        InlineScheduler(stream).pump()
        stream.end()
        drops = stream.stats.end_drops
        stream.end()
        assert stream.stats.end_drops == drops


class TestIngressDropForgets:
    def test_dropped_post_sheds_telemetry_maps(self):
        server = traced_server()
        stream = server.deploy_script(SOURCE)
        key = next(iter(stream.ingress))
        stream.ingress[key].post = lambda *a, **k: False  # force the drop path
        msg_id = stream.post(MimeMessage(TEXT_PLAIN, b"refused"))
        assert stream.stats.queue_drops == 1
        assert msg_id not in stream.pool
        # the regression: these two maps used to keep the id forever
        assert msg_id not in stream.tm.traced_ids
        assert msg_id not in stream.tm.enqueued


class TestPostMessageDeadline:
    def test_spurious_wakeups_do_not_burn_the_budget(self):
        q = MessageQueue(10)
        q.post_message("a", 10)  # full
        stop = threading.Event()

        def heckler():
            # notify repeatedly without freeing any room — each notify is
            # a spurious wakeup for the waiting producer
            while not stop.is_set():
                with q._cond:
                    q._cond.notify_all()
                time.sleep(0.01)

        t = threading.Thread(target=heckler)
        t.start()
        try:
            t0 = time.monotonic()
            assert not q.post_message("b", 10, timeout=0.3)
            elapsed = time.monotonic() - t0
        finally:
            stop.set()
            t.join()
        # pre-fix behaviour: the first notify (~10 ms in) ended the wait
        assert elapsed >= 0.25
        assert q.dropped == 1

    def test_wait_still_succeeds_when_room_appears(self):
        q = MessageQueue(10)
        q.post_message("a", 10)

        def consume_later():
            time.sleep(0.05)
            q.fetch_message()

        t = threading.Thread(target=consume_later)
        t.start()
        assert q.post_message("b", 10, timeout=2.0)
        t.join()

    def test_close_during_wait_raises(self):
        from repro.errors import QueueClosedError

        q = MessageQueue(10)
        q.post_message("a", 10)

        def close_later():
            time.sleep(0.05)
            q.close()

        t = threading.Thread(target=close_later)
        t.start()
        with pytest.raises(QueueClosedError):
            q.post_message("b", 10, timeout=2.0)
        t.join()


TINY_DEFS = """
streamlet fastsrc{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet slowsink{
  port{ in pi : text/*; out po : text/plain; }
}
channel tiny{
  port{ in cin : text/*; out cout : text/*; }
  attribute{ buffer = 1; }
}
"""

TINY_SOURCE = TINY_DEFS + """
main stream squeeze{
  streamlet a = new-streamlet (fastsrc);
  streamlet b = new-streamlet (slowsink);
  channel t = new-channel (tiny);
  connect (a.po, b.pi, t);
}
"""


class _Fast(Streamlet):
    def process(self, port, message, ctx):
        return [("po", message)]


class _Slow(Streamlet):
    def process(self, port, message, ctx):
        time.sleep(0.002)
        return [("po", message)]


class TestThreadedStallRetryDrops:
    def test_drop_timeout_zero_leaks_nothing(self):
        server = build_server(drop_timeout=0.0)
        for d in parse_script(TINY_DEFS).streamlets:
            server.directory.advertise(d, _Fast if d.name == "fastsrc" else _Slow)
        stream = server.deploy_script(TINY_SOURCE)
        dropped_ids = []
        stream.drop_hook = lambda msg_id, message: dropped_ids.append(msg_id)
        scheduler = ThreadedScheduler(stream, poll_interval=0.0002)
        scheduler.start()
        try:
            n = 30
            for i in range(n):
                stream.post(MimeMessage(TEXT_PLAIN, f"b{i}".encode() * 60))
            scheduler.drain(timeout=30)
            delivered = stream.collect()
        finally:
            scheduler.stop()
            stream.end()
        assert stream.stats.queue_drops > 0  # the squeeze really dropped
        assert len(stream.pool) == 0  # no pool leak
        # every drop fired the drop signal exactly once
        assert len(dropped_ids) == stream.stats.queue_drops
        assert len(set(dropped_ids)) == len(dropped_ids)
        report = check_conservation(stream)
        assert report.balanced
        assert report.delivered + report.queue_drops == n
