import pytest

from repro.errors import MessagePoolError
from repro.mime.message import MimeMessage
from repro.runtime.message_pool import MessagePool, PassMode


def msg(body=b"payload"):
    return MimeMessage("text/plain", body)


class TestReferenceMode:
    def test_admit_checkout_same_object(self):
        pool = MessagePool(PassMode.REFERENCE)
        m = msg()
        mid = pool.admit(m)
        assert pool.checkout(mid) is m

    def test_no_copies_counted(self):
        pool = MessagePool(PassMode.REFERENCE)
        mid = pool.admit(msg())
        pool.checkout(mid)
        pool.checkout(mid)
        assert pool.copies == 0

    def test_release_returns_message(self):
        pool = MessagePool()
        m = msg()
        mid = pool.admit(m)
        assert pool.release(mid) is m
        assert mid not in pool

    def test_double_release_raises(self):
        pool = MessagePool()
        mid = pool.admit(msg())
        pool.release(mid)
        with pytest.raises(MessagePoolError):
            pool.release(mid)

    def test_unknown_id_raises(self):
        with pytest.raises(MessagePoolError):
            MessagePool().checkout("ghost")

    def test_rebind(self):
        pool = MessagePool()
        mid = pool.admit(msg(b"old"))
        replacement = msg(b"new")
        pool.rebind(mid, replacement)
        assert pool.checkout(mid) is replacement

    def test_rebind_unknown_raises(self):
        with pytest.raises(MessagePoolError):
            MessagePool().rebind("ghost", msg())

    def test_len_and_counters(self):
        pool = MessagePool()
        ids = [pool.admit(msg()) for _ in range(3)]
        assert len(pool) == 3
        pool.release(ids[0])
        assert len(pool) == 2
        assert pool.admitted == 3
        assert pool.released == 1


class TestValueMode:
    def test_checkout_copies(self):
        pool = MessagePool(PassMode.VALUE)
        m = msg()
        mid = pool.admit(m)
        copy = pool.checkout(mid)
        assert copy is not m
        assert pool.copies == 1

    def test_copy_becomes_canonical(self):
        # downstream hops must see upstream transformations
        pool = MessagePool(PassMode.VALUE)
        mid = pool.admit(msg(b"v1"))
        first = pool.checkout(mid)
        first.set_body(b"v2")
        second = pool.checkout(mid)
        assert second.body == b"v2"

    def test_peek_never_copies(self):
        pool = MessagePool(PassMode.VALUE)
        mid = pool.admit(msg())
        pool.peek(mid)
        assert pool.copies == 0

    def test_size_of(self):
        pool = MessagePool(PassMode.VALUE)
        m = msg(b"12345")
        mid = pool.admit(m)
        assert pool.size_of(mid) == m.total_size()
