import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueClosedError
from repro.runtime.message_queue import MessageQueue


class TestBasics:
    def test_fifo(self):
        q = MessageQueue(1000)
        q.post_message("a", 10)
        q.post_message("b", 10)
        assert q.fetch_message() == "a"
        assert q.fetch_message() == "b"

    def test_empty_fetch_none(self):
        assert MessageQueue(100).fetch_message() is None

    def test_len_and_bytes(self):
        q = MessageQueue(1000)
        q.post_message("a", 100)
        q.post_message("b", 200)
        assert len(q) == 2
        assert q.pending_bytes == 300

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue(-1)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue(10, drop_timeout=-1)


class TestCapacity:
    def test_full_drops(self):
        q = MessageQueue(100)
        assert q.post_message("a", 80)
        assert not q.post_message("b", 80)  # would exceed
        assert q.dropped == 1

    def test_empty_queue_admits_oversized(self):
        q = MessageQueue(10)
        assert q.post_message("big", 1000)

    def test_zero_capacity_is_rendezvous(self):
        q = MessageQueue(0)
        assert q.post_message("a", 5)
        assert not q.post_message("b", 5)
        q.fetch_message()
        assert q.post_message("b", 5)

    def test_drop_timeout_waits_for_room(self):
        q = MessageQueue(10, drop_timeout=1.0)
        q.post_message("a", 10)

        def consume_later():
            import time

            time.sleep(0.05)
            q.fetch_message()

        t = threading.Thread(target=consume_later)
        t.start()
        assert q.post_message("b", 10)  # succeeds once consumer drains
        t.join()

    def test_drop_timeout_expires(self):
        q = MessageQueue(10, drop_timeout=0.01)
        q.post_message("a", 10)
        assert not q.post_message("b", 10)


class TestAttachment:
    def test_producer_consumer_counts(self):
        q = MessageQueue(100)
        q.incr_producers()
        q.incr_consumers()
        assert q.producer_count == 1
        assert q.consumer_count == 1
        q.decr_producers()
        q.decr_consumers()
        assert q.producer_count == 0

    def test_underflow_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue(1).decr_producers()
        with pytest.raises(ValueError):
            MessageQueue(1).decr_consumers()


class TestCloseAndDrain:
    def test_post_after_close_raises(self):
        q = MessageQueue(100)
        q.close()
        with pytest.raises(QueueClosedError):
            q.post_message("a", 1)

    def test_fetch_drains_then_raises(self):
        q = MessageQueue(100)
        q.post_message("a", 1)
        q.close()
        assert q.fetch_message() == "a"
        with pytest.raises(QueueClosedError):
            q.fetch_message()

    def test_blocking_fetch_released_by_close(self):
        q = MessageQueue(100)
        result = {}

        def blocked():
            try:
                q.fetch_message(timeout=None)
            except QueueClosedError:
                result["closed"] = True

        t = threading.Thread(target=blocked)
        t.start()
        q.close()
        t.join(timeout=2)
        assert result.get("closed")

    def test_drain(self):
        q = MessageQueue(1000)
        q.post_message("a", 1)
        q.post_message("b", 1)
        assert q.drain() == ["a", "b"]
        assert q.is_empty()
        assert q.pending_bytes == 0


class TestConcurrency:
    def test_producer_consumer_threads(self):
        q = MessageQueue(10_000)
        n = 500
        received = []

        def producer():
            for i in range(n):
                while not q.post_message(f"m{i}", 10):
                    pass

        def consumer():
            while len(received) < n:
                msg = q.fetch_message(timeout=0.1)
                if msg is not None:
                    received.append(msg)

        threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert received == [f"m{i}" for i in range(n)]


@settings(deadline=None, max_examples=50)
@given(st.lists(st.integers(min_value=1, max_value=50), max_size=40))
def test_order_preserved_property(sizes):
    q = MessageQueue(10**9)
    posted = []
    for i, size in enumerate(sizes):
        q.post_message(f"m{i}", size)
        posted.append(f"m{i}")
    fetched = []
    while True:
        msg = q.fetch_message()
        if msg is None:
            break
        fetched.append(msg)
    assert fetched == posted
