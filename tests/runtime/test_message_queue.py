import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueClosedError
from repro.runtime.message_queue import MessageQueue


class TestBasics:
    def test_fifo(self):
        q = MessageQueue(1000)
        q.post_message("a", 10)
        q.post_message("b", 10)
        assert q.fetch_message() == "a"
        assert q.fetch_message() == "b"

    def test_empty_fetch_none(self):
        assert MessageQueue(100).fetch_message() is None

    def test_len_and_bytes(self):
        q = MessageQueue(1000)
        q.post_message("a", 100)
        q.post_message("b", 200)
        assert len(q) == 2
        assert q.pending_bytes == 300

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue(-1)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue(10, drop_timeout=-1)


class TestCapacity:
    def test_full_drops(self):
        q = MessageQueue(100)
        assert q.post_message("a", 80)
        assert not q.post_message("b", 80)  # would exceed
        assert q.dropped == 1

    def test_empty_queue_admits_oversized(self):
        q = MessageQueue(10)
        assert q.post_message("big", 1000)

    def test_zero_capacity_is_rendezvous(self):
        q = MessageQueue(0)
        assert q.post_message("a", 5)
        assert not q.post_message("b", 5)
        q.fetch_message()
        assert q.post_message("b", 5)

    def test_drop_timeout_waits_for_room(self):
        q = MessageQueue(10, drop_timeout=1.0)
        q.post_message("a", 10)

        def consume_later():
            import time

            time.sleep(0.05)
            q.fetch_message()

        t = threading.Thread(target=consume_later)
        t.start()
        assert q.post_message("b", 10)  # succeeds once consumer drains
        t.join()

    def test_drop_timeout_expires(self):
        q = MessageQueue(10, drop_timeout=0.01)
        q.post_message("a", 10)
        assert not q.post_message("b", 10)


class TestAttachment:
    def test_producer_consumer_counts(self):
        q = MessageQueue(100)
        q.incr_producers()
        q.incr_consumers()
        assert q.producer_count == 1
        assert q.consumer_count == 1
        q.decr_producers()
        q.decr_consumers()
        assert q.producer_count == 0

    def test_underflow_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue(1).decr_producers()
        with pytest.raises(ValueError):
            MessageQueue(1).decr_consumers()


class TestCloseAndDrain:
    def test_post_after_close_raises(self):
        q = MessageQueue(100)
        q.close()
        with pytest.raises(QueueClosedError):
            q.post_message("a", 1)

    def test_fetch_drains_then_raises(self):
        q = MessageQueue(100)
        q.post_message("a", 1)
        q.close()
        assert q.fetch_message() == "a"
        with pytest.raises(QueueClosedError):
            q.fetch_message()

    def test_blocking_fetch_released_by_close(self):
        q = MessageQueue(100)
        result = {}

        def blocked():
            try:
                q.fetch_message(timeout=None)
            except QueueClosedError:
                result["closed"] = True

        t = threading.Thread(target=blocked)
        t.start()
        q.close()
        t.join(timeout=2)
        assert result.get("closed")

    def test_drain(self):
        q = MessageQueue(1000)
        q.post_message("a", 1)
        q.post_message("b", 1)
        assert q.drain() == ["a", "b"]
        assert q.is_empty()
        assert q.pending_bytes == 0


class TestTimeoutContract:
    """The post_message timeout contract (module docstring, Figure 6-9)."""

    def full(self, drop_timeout=0.0):
        q = MessageQueue(10, drop_timeout=drop_timeout)
        q.post_message("a", 10)
        return q

    def test_none_uses_configured_drop_timeout_and_counts(self):
        q = self.full(drop_timeout=0.02)
        t0 = time.monotonic()
        assert not q.post_message("b", 10)  # timeout=None is the default
        assert time.monotonic() - t0 >= 0.02
        assert q.dropped == 1

    def test_explicit_positive_timeout_overrides_configured_and_counts(self):
        q = self.full(drop_timeout=30.0)  # would hang if the override leaked
        t0 = time.monotonic()
        assert not q.post_message("b", 10, timeout=0.02)
        assert time.monotonic() - t0 < 5.0
        assert q.dropped == 1

    def test_zero_timeout_is_a_probe_and_never_counts(self):
        q = self.full(drop_timeout=30.0)
        t0 = time.monotonic()
        assert not q.post_message("b", 10, timeout=0)
        assert time.monotonic() - t0 < 1.0  # no wait at all
        assert q.dropped == 0  # the caller owns the accounting

    def test_negative_timeout_is_a_probe_too(self):
        q = self.full()
        assert not q.post_message("b", 10, timeout=-1)
        assert q.dropped == 0

    def test_probe_succeeds_when_room_exists(self):
        q = MessageQueue(100)
        assert q.post_message("a", 10, timeout=0)
        assert q.dropped == 0

    def test_wait_for_room_sees_consumer_progress(self):
        q = self.full(drop_timeout=0.0)

        def consume_later():
            time.sleep(0.02)
            q.fetch_message()

        t = threading.Thread(target=consume_later)
        t.start()
        assert q.wait_for_room(10, timeout=2.0)
        t.join()
        assert q.post_message("b", 10, timeout=0)

    def test_wait_for_room_times_out_without_progress(self):
        q = self.full()
        assert not q.wait_for_room(10, timeout=0.01)

    def test_wait_for_room_immediate_when_room_exists(self):
        q = MessageQueue(100)
        assert q.wait_for_room(10, timeout=0.0)


class TestConsumerWaiters:
    """The add_waiter edge-triggered wakeup used by scheduler workers."""

    def test_post_sets_registered_waiter(self):
        q = MessageQueue(100)
        event = threading.Event()
        q.add_waiter(event)
        assert not event.is_set()
        q.post_message("a", 1)
        assert event.is_set()

    def test_late_registration_sees_existing_traffic(self):
        q = MessageQueue(100)
        q.post_message("a", 1)
        event = threading.Event()
        q.add_waiter(event)  # must not sleep through traffic that beat it
        assert event.is_set()

    def test_close_sets_waiter(self):
        q = MessageQueue(100)
        event = threading.Event()
        q.add_waiter(event)
        q.close()
        assert event.is_set()

    def test_removed_waiter_stays_quiet(self):
        q = MessageQueue(100)
        event = threading.Event()
        q.add_waiter(event)
        q.remove_waiter(event)
        q.post_message("a", 1)
        assert not event.is_set()
        q.remove_waiter(event)  # idempotent


class TestConcurrency:
    def test_producer_consumer_threads(self):
        q = MessageQueue(10_000)
        n = 500
        received = []

        def producer():
            for i in range(n):
                while not q.post_message(f"m{i}", 10):
                    pass

        def consumer():
            while len(received) < n:
                msg = q.fetch_message(timeout=0.1)
                if msg is not None:
                    received.append(msg)

        threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert received == [f"m{i}" for i in range(n)]


@settings(deadline=None, max_examples=50)
@given(st.lists(st.integers(min_value=1, max_value=50), max_size=40))
def test_order_preserved_property(sizes):
    q = MessageQueue(10**9)
    posted = []
    for i, size in enumerate(sizes):
        q.post_message(f"m{i}", size)
        posted.append(f"m{i}")
    fetched = []
    while True:
        msg = q.fetch_message()
        if msg is None:
            break
        fetched.append(msg)
    assert fetched == posted


class TestTryPost:
    """The non-blocking fast path used by the gateway's event loop."""

    def test_success_enqueues_and_counts_posted(self):
        q = MessageQueue(1000)
        assert q.try_post("a", 10) is True
        assert q.posted == 1
        assert q.fetch_message() == "a"

    def test_full_reports_false_and_never_counts_drops(self):
        q = MessageQueue(10, drop_timeout=30.0)  # timeout must not apply
        q.post_message("a", 10)
        begin = time.perf_counter()
        assert q.try_post("b", 10) is False
        assert time.perf_counter() - begin < 1.0  # did not serve the timeout
        assert q.dropped == 0  # probe contract: the caller owns accounting
        assert q.posted == 1

    def test_contended_lock_reports_none_without_blocking(self):
        q = MessageQueue(1000)
        held = threading.Event()
        release = threading.Event()

        def hold():
            with q._lock:
                held.set()
                release.wait(5)

        t = threading.Thread(target=hold)
        t.start()
        assert held.wait(5)
        try:
            begin = time.perf_counter()
            assert q.try_post("a", 10) is None
            assert time.perf_counter() - begin < 1.0
        finally:
            release.set()
            t.join(timeout=5)
        assert q.posted == 0
        assert q.try_post("a", 10) is True  # uncontended retry succeeds

    def test_closed_queue_raises(self):
        q = MessageQueue(100)
        q.close()
        with pytest.raises(QueueClosedError):
            q.try_post("a", 10)

    def test_success_signals_waiters(self):
        q = MessageQueue(1000)
        wake = threading.Event()
        q.add_waiter(wake)
        assert q.try_post("a", 10) is True
        assert wake.wait(1.0)
