"""The sharded multi-process execution plane, end to end.

The contract under test (repro.runtime.process_scheduler +
repro.semantics.shards): the planner cuts only at asynchronous channel
boundaries; a multi-shard run delivers everything the inline engine
would, with the conservation ledger balanced across processes; a paused
member parks its traffic on the parent-side channel and resumes cleanly;
a SIGKILLed shard worker loses nothing — the parent keeps custody of
dispatched ids and re-injects them into the respawned child; shutdown
unlinks every shared-memory segment.
"""

import os
import time

import pytest

from repro.apps import build_server
from repro.faults.invariant import check_conservation
from repro.mime.message import MimeMessage
from repro.runtime.process_scheduler import ProcessScheduler
from repro.runtime.scheduler import InlineScheduler
from repro.semantics.shards import plan_shards
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream procchain{
  streamlet a, b, c = new-streamlet (tap);
  connect (a.po, b.pi);
  connect (b.po, c.pi);
}
"""


def deploy():
    server = build_server(clock=VirtualClock())
    stream = server.deploy_script(SOURCE)
    return server, stream


def shm_segments():
    return [n for n in os.listdir("/dev/shm") if n.startswith("mgps_")]


def await_pending(channel, n, timeout=5.0):
    deadline = time.time() + timeout
    while channel.pending() < n:
        assert time.time() < deadline, "messages never parked"
        time.sleep(0.002)


class TestShardPlanner:
    def test_async_edges_are_cut_points(self):
        plan = plan_shards(
            ["a", "b", "c", "d"],
            [("a", "b", False), ("b", "c", False), ("c", "d", False)],
            2,
        )
        assert plan.shards == (("a", "b"), ("c", "d"))
        assert plan.sync_edges == ()

    def test_synchronous_edges_never_split(self):
        plan = plan_shards(
            ["a", "b", "c", "d"],
            [("a", "b", True), ("b", "c", False), ("c", "d", True)],
            4,
        )
        assert plan.shards == (("a", "b"), ("c", "d"))
        assert set(plan.sync_edges) == {("a", "b"), ("c", "d")}
        assert plan.shard_of == {"a": 0, "b": 0, "c": 1, "d": 1}

    def test_all_synchronous_collapses_to_one_shard(self):
        plan = plan_shards(
            ["a", "b", "c"],
            [("a", "b", True), ("b", "c", True)],
            3,
        )
        assert plan.shards == (("a", "b", "c"),)

    def test_max_shards_bounds_the_partition(self):
        plan = plan_shards(
            [f"n{i}" for i in range(6)],
            [(f"n{i}", f"n{i+1}", False) for i in range(5)],
            3,
        )
        assert len(plan) == 3
        assert [m for shard in plan.shards for m in shard] == [
            f"n{i}" for i in range(6)
        ]

    def test_single_instance_and_empty(self):
        assert plan_shards(["only"], [], 4).shards == (("only",),)
        assert plan_shards([], [], 4).shards == ()


class TestProcessExecution:
    def test_multi_shard_delivery_and_conservation(self):
        _server, stream = deploy()
        scheduler = ProcessScheduler(stream, shards=2)
        scheduler.start()
        try:
            assert len(scheduler.shard_plan) == 2
            for i in range(40):
                stream.post(MimeMessage("text/plain", f"m{i}".encode()))
            assert scheduler.drain(timeout=15)
            delivered = stream.collect()
            assert len(delivered) == 40
            report = check_conservation(stream)
            assert report.balanced and report.lost == 0
            assert scheduler.dispatches >= 40  # every message crossed a ring
        finally:
            scheduler.stop()
            stream.end()
        assert shm_segments() == []

    def test_parity_with_inline_engine(self):
        bodies = [f"payload-{i}".encode() for i in range(12)]
        _server, istream = deploy()
        inline = InlineScheduler(istream)
        for body in bodies:
            istream.post(MimeMessage("text/plain", body))
        inline.pump()
        expect = sorted(m.body for m in istream.collect())
        istream.end()

        _server, pstream = deploy()
        scheduler = ProcessScheduler(pstream, shards=2)
        scheduler.start()
        try:
            for body in bodies:
                pstream.post(MimeMessage("text/plain", body))
            assert scheduler.drain(timeout=15)
            got = sorted(m.body for m in pstream.collect())
        finally:
            scheduler.stop()
            pstream.end()
        assert got == expect

    def test_pause_parks_on_parent_channel_then_resumes(self):
        _server, stream = deploy()
        scheduler = ProcessScheduler(stream, shards=2)
        scheduler.start()
        try:
            boundary = stream.node("b").inputs["pi"]
            stream.node("b").streamlet.pause()
            for i in range(3):
                stream.post(MimeMessage("text/plain", f"m{i}".encode()))
            # a (in the upstream shard) processed them; b's shard holds
            # them on the parent-side channel, not inside the child
            await_pending(boundary, 3)
            assert all(not s.in_flight for s in scheduler._shards)
            stream.node("b").streamlet.activate()
            assert scheduler.drain(timeout=15)
            assert len(stream.collect()) == 3
            assert check_conservation(stream).balanced
        finally:
            scheduler.stop()
            stream.end()

    def test_worker_states_reports_every_member(self):
        _server, stream = deploy()
        scheduler = ProcessScheduler(stream, shards=2)
        scheduler.start()
        try:
            states = scheduler.worker_states()
            assert set(states) == {"a", "b", "c"}
            for name, entry in states.items():
                assert entry["alive"] is True
                assert isinstance(entry["pid"], int)
                assert entry["shard"] == scheduler.shard_plan.shard_of[name]
        finally:
            scheduler.stop()
            stream.end()

    def test_drain_on_idle_stream(self):
        _server, stream = deploy()
        scheduler = ProcessScheduler(stream, shards=2)
        scheduler.start()
        try:
            assert scheduler.drain(timeout=5)
        finally:
            scheduler.stop()
            stream.end()

    def test_stop_is_idempotent_and_unlinks_segments(self):
        _server, stream = deploy()
        scheduler = ProcessScheduler(stream, shards=2)
        scheduler.start()
        assert shm_segments() != []
        scheduler.stop()
        scheduler.stop()
        stream.end()
        assert shm_segments() == []

    def test_double_start_rejected(self):
        _server, stream = deploy()
        scheduler = ProcessScheduler(stream, shards=2)
        scheduler.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                scheduler.start()
        finally:
            scheduler.stop()
            stream.end()


class TestWorkerCrash:
    def test_sigkill_mid_flight_loses_nothing(self):
        """The cross-process conservation story: kill -9, respawn, balance.

        The parent keeps pool custody of every dispatched id, so the ids
        resident in the killed child are re-injected into its replacement
        and every message still arrives exactly once.
        """
        _server, stream = deploy()
        scheduler = ProcessScheduler(stream, shards=2, window=8)
        scheduler.start()
        try:
            pid_before = scheduler.worker_states()["b"]["pid"]
            for i in range(60):
                stream.post(MimeMessage("text/plain", f"m{i}".encode()))
            scheduler.kill_worker("b")  # SIGKILL the downstream shard
            assert scheduler.workers_killed == 1
            scheduler.ensure_workers()
            assert scheduler.drain(timeout=20)
            delivered = stream.collect()
            assert len(delivered) == 60
            report = check_conservation(stream)
            assert report.balanced and report.lost == 0
            after = scheduler.worker_states()["b"]
            assert after["alive"] and after["pid"] != pid_before
        finally:
            scheduler.stop()
            stream.end()
        assert shm_segments() == []

    def test_stale_segments_of_dead_owners_are_swept(self):
        from multiprocessing import shared_memory

        from repro.runtime.shm import sweep_stale_segments

        # fabricate a leftover from a pid that cannot exist; a fresh
        # scheduler start (which calls the sweep) must unlink it
        fake = shared_memory.SharedMemory(
            name="mgps_999999999_0", create=True, size=1024
        )
        fake.close()
        assert "mgps_999999999_0" in shm_segments()
        assert sweep_stale_segments() >= 1
        assert "mgps_999999999_0" not in shm_segments()
