"""Reconfiguration corner cases: channel categories, bad shapes, errors."""

import pytest

from repro.apps import build_server
from repro.errors import ChannelError, CompositionError, ReconfigurationError
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler

DEFS = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet twoport{
  port{ in pi1 : text/*; in pi2 : text/*; out po1 : text/plain; out po2 : text/plain; }
}
channel kkChan{
  port{ in cin : text/*; out cout : text/*; }
  attribute{ category = KK; }
}
channel syncChan{
  port{ in cin : text/*; out cout : text/*; }
  attribute{ type = SYNC; buffer = 0; }
}
"""


def deploy(body):
    server = build_server()
    stream = server.deploy_script(DEFS + f"main stream s{{ {body} }}")
    return server, stream, InlineScheduler(stream)


class TestChannelCategoryInteractions:
    def test_insert_across_kk_link_rejected(self):
        _server, stream, _ = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "streamlet tc = new-streamlet (text_compress);"
            "channel kk = new-channel (kkChan);"
            "connect (a.po, b.pi, kk);"
        )
        with pytest.raises(ChannelError):
            stream.insert("a.po", "b.pi", "tc")

    def test_disconnect_kk_link_rejected(self):
        _server, stream, _ = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "channel kk = new-channel (kkChan);"
            "connect (a.po, b.pi, kk);"
        )
        with pytest.raises(ChannelError):
            stream.disconnect("a.po", "b.pi")

    def test_sync_channel_in_pipeline(self):
        # a rendezvous channel must still deliver under the inline pump
        _server, stream, scheduler = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "channel sc = new-channel (syncChan);"
            "connect (a.po, b.pi, sc);"
        )
        for i in range(5):
            stream.post(MimeMessage("text/plain", f"m{i}".encode()))
        scheduler.pump()
        assert len(stream.collect()) == 5

    def test_insert_preserves_pending_bk_units(self):
        _server, stream, scheduler = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "streamlet tc = new-streamlet (text_compress);"
            "connect (a.po, b.pi);"
        )
        # park one message in the a->b channel: pause the consumer so the
        # inline pump stops after a's hop
        stream.node("b").streamlet.pause()
        stream.post(MimeMessage("text/plain", b"early"))
        scheduler.pump()
        assert stream.node("b").inputs["pi"].pending() == 1
        stream.insert("a.po", "b.pi", "tc")
        stream.node("b").streamlet.activate()
        # BK semantics: the parked message still reaches b, uncompressed
        stream.post(MimeMessage("text/plain", b"late"))
        scheduler.pump()
        outs = stream.collect()
        assert len(outs) == 2
        assert outs[0].body == b"early"  # order preserved, never compressed
        assert "Content-Encoding" in [n for n, _ in outs[1].headers]


class TestBadShapes:
    def test_insert_needs_single_in_out(self):
        _server, stream, _ = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "streamlet wide = new-streamlet (twoport);"
            "connect (a.po, b.pi);"
        )
        with pytest.raises(ReconfigurationError, match="exactly one"):
            stream.insert("a.po", "b.pi", "wide")

    def test_replace_needs_matching_ports(self):
        _server, stream, _ = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "streamlet wide = new-streamlet (twoport);"
            "connect (a.po, b.pi);"
        )
        with pytest.raises(ReconfigurationError, match="lacks"):
            stream.replace("b", "wide")

    def test_replace_target_must_be_dormant(self):
        _server, stream, _ = deploy(
            "streamlet a, b, c = new-streamlet (tap);"
            "connect (a.po, b.pi);"
            "connect (b.po, c.pi);"
        )
        with pytest.raises(ReconfigurationError, match="already wired"):
            stream.replace("a", "b")

    def test_new_streamlet_unknown_definition(self):
        _server, stream, _ = deploy("streamlet a = new-streamlet (tap);")
        with pytest.raises(CompositionError):
            stream.new_streamlet("x", "no_such_def")

    def test_new_channel_unknown_definition(self):
        _server, stream, _ = deploy("streamlet a = new-streamlet (tap);")
        with pytest.raises(CompositionError):
            stream.new_channel("c", "no_such_chan")

    def test_name_collision(self):
        _server, stream, _ = deploy("streamlet a = new-streamlet (tap);")
        with pytest.raises(CompositionError):
            stream.new_streamlet("a", "tap")

    def test_remove_channel_in_use(self):
        _server, stream, _ = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "channel kk = new-channel (kkChan);"
            "connect (a.po, b.pi, kk);"
        )
        with pytest.raises(CompositionError, match="still carries"):
            stream.remove_channel("kk")

    def test_extract_dormant_is_safe(self):
        _server, stream, _ = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "streamlet spare = new-streamlet (tap);"
            "connect (a.po, b.pi);"
        )
        stream.extract_streamlet("spare")  # no links: nothing to do, no error

    def test_end_is_idempotent(self):
        _server, stream, _ = deploy("streamlet a = new-streamlet (tap);")
        stream.end()
        stream.end()
        assert stream.ended


class TestHandlerCreatedChannels:
    def test_when_block_creates_channel_and_connects(self):
        """Handlers may instantiate channels and wire through them."""
        server = build_server()
        stream = server.deploy_script(DEFS + """
main stream s{
  streamlet a = new-streamlet (tap);
  streamlet b = new-streamlet (tap);
  streamlet spare1, spare2 = new-streamlet (tap);
  connect (a.po, b.pi);
  when (LOW_BANDWIDTH){
    channel extra = new-channel (kkChan);
    connect (spare1.po, spare2.pi, extra);
  }
}""")
        server.events.raise_event("LOW_BANDWIDTH")
        assert "extra" in stream.channel_names()
        assert stream.channel("extra").source is not None
        assert stream.node("spare2").inputs  # wired by the handler


class TestEqSevenOneAccounting:
    def test_insert_timing_components(self):
        _server, stream, _ = deploy(
            "streamlet a, b = new-streamlet (tap);"
            "streamlet tc = new-streamlet (text_compress);"
            "connect (a.po, b.pi);"
        )
        timing = stream.insert("a.po", "b.pi", "tc")
        assert timing.actions == 1
        assert timing.total == pytest.approx(
            timing.suspend + timing.channel_ops + timing.activate
        )
        assert timing.channel_ops > 0
