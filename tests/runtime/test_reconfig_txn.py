"""Transactional reconfiguration: validate, commit, roll back, probation.

The contract under test (repro.runtime.reconfig): a staged action batch
is dry-run against a shadow topology and semantically re-checked before
the live stream is touched; a commit is all-or-nothing under quiescence;
a mid-apply failure restores topology, wiring, params, and queue
contents exactly and leaves the conservation ledger balanced; every
successful commit bumps the stream epoch; a probation monitor rolls a
faulting fresh epoch back to the last known good composition.
"""

import time as _time

import pytest

from repro.apps import build_server
from repro.errors import (
    ReconfigAbortedError,
    ReconfigurationError,
    ReconfigValidationError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RecoveryPolicy,
    Supervisor,
)
from repro.faults.invariant import check_conservation
from repro.mcl import astnodes as ast
from repro.mime.message import MimeMessage
from repro.runtime.process_scheduler import ProcessScheduler
from repro.runtime.reconfig import ProbationMonitor, ReconfigTransaction, TxnState
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.util.clock import VirtualClock

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet imgsink{
  port{ in pi : image/*; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  streamlet tc = new-streamlet (text_compress);
  streamlet isink = new-streamlet (imgsink);
  connect (a.po, b.pi);
  connect (b.po, c.pi);
}
"""


def deploy(clock=None):
    server = build_server(clock=clock if clock is not None else VirtualClock())
    stream = server.deploy_script(SOURCE)
    return server, stream


def fingerprint(stream):
    """Byte-for-byte comparable digest of the live topology."""
    table = stream.snapshot_table()
    pending = {}
    seen = set()
    for name, node in sorted(stream._nodes.items()):
        for port, ch in sorted(node.inputs.items()):
            if id(ch) not in seen:
                seen.add(id(ch))
                pending[f"{name}.{port}"] = tuple(e for e in ch.queue.snapshot_state()[0])
    return (
        sorted((n, d.name) for n, d in table.instances.items()),
        sorted(table.channels),
        sorted(str(link) for link in table.links),
        tuple(str(r) for r in table.exposed_in),
        tuple(str(r) for r in table.exposed_out),
        stream.channel_names(),
        stream.processing_order(),
        pending,
        {n: dict(stream.node(n).ctx.params) for n in stream._nodes},
    )


def park_in_b(stream, scheduler, n=3):
    """Post n messages and strand them on b's input channel."""
    stream.node("b").streamlet.pause()
    for i in range(n):
        stream.post(MimeMessage("text/plain", f"m{i}".encode()))
    if isinstance(scheduler, InlineScheduler):
        scheduler.pump()
    else:
        deadline = _time.time() + 5
        while stream.node("b").inputs["pi"].pending() < n:
            assert _time.time() < deadline, "messages never reached b"
            _time.sleep(0.002)
    assert stream.node("b").inputs["pi"].pending() == n


class TestValidation:
    def test_type_mismatch_rejected_without_touching_stream(self):
        _server, stream = deploy()
        before = fingerprint(stream)
        txn = ReconfigTransaction(stream, [
            ast.Connect(ast.PortRef("b", "po"), ast.PortRef("isink", "pi")),
        ])
        with pytest.raises(ReconfigValidationError, match="action 0"):
            txn.validate()
        assert fingerprint(stream) == before
        assert stream.epoch == 0

    def test_feedback_loop_rejected(self):
        _server, stream = deploy()
        txn = ReconfigTransaction(stream, [
            ast.NewInstances("streamlet", ("x", "y"), "tap"),
            ast.Connect(ast.PortRef("x", "po"), ast.PortRef("y", "pi")),
            ast.Connect(ast.PortRef("y", "po"), ast.PortRef("x", "pi")),
        ])
        with pytest.raises(ReconfigValidationError, match="feedback"):
            txn.validate()

    def test_reachable_open_circuit_rejected(self):
        # disconnecting b->c leaves b's output dangling on the live flow
        _server, stream = deploy()
        txn = ReconfigTransaction(stream, [
            ast.Disconnect(ast.PortRef("b", "po"), ast.PortRef("c", "pi")),
        ])
        with pytest.raises(ReconfigValidationError, match="open circuit"):
            txn.validate()

    def test_unreachable_island_tolerated(self):
        # a dormant pair wired to each other is fed by nothing: no message
        # can be lost there, so validation must not reject it
        _server, stream = deploy()
        txn = ReconfigTransaction(stream, [
            ast.NewInstances("streamlet", ("x", "y"), "tap"),
            ast.Connect(ast.PortRef("x", "po"), ast.PortRef("y", "pi")),
        ])
        table = txn.validate()
        assert txn.state is TxnState.VALIDATED
        assert "x" in table.instances

    def test_validation_failure_is_pre_commit(self):
        # execute() = validate + commit; a validation failure never
        # reaches the apply phase, so nothing rolls back
        _server, stream = deploy()
        txn = ReconfigTransaction(stream, [
            ast.Connect(ast.PortRef("b", "po"), ast.PortRef("isink", "pi")),
        ])
        with pytest.raises(ReconfigValidationError):
            txn.execute()
        assert txn.state is TxnState.STAGED
        assert stream.epoch == 0


class TestCommit:
    def test_commit_applies_and_bumps_epoch(self):
        _server, stream = deploy()
        scheduler = InlineScheduler(stream)
        txn = ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ])
        txn.execute()
        assert txn.state is TxnState.COMMITTED
        assert stream.epoch == 1 and txn.epoch == 1
        assert "tc" in stream.processing_order()
        stream.post(MimeMessage("text/plain", b"hello " * 40))
        scheduler.pump()
        out = stream.collect()
        assert len(out) == 1
        assert "Content-Encoding" in [n for n, _ in out[0].headers]

    def test_committed_epoch_rides_the_wire(self):
        _server, stream = deploy()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"pre"))
        scheduler.pump()
        pre = stream.collect()
        assert pre[0].headers.epoch is None  # epoch 0 is wire-compatible
        ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ]).execute()
        stream.post(MimeMessage("text/plain", b"post"))
        scheduler.pump()
        post = stream.collect()
        assert post[0].headers.epoch == 1

    def test_sequential_commits_monotonic(self):
        _server, stream = deploy()
        ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ]).execute()
        ReconfigTransaction(stream, [
            ast.RemoveInstance("extract", "tc"),
        ]).execute()
        assert stream.epoch == 2

    def test_commit_twice_rejected(self):
        _server, stream = deploy()
        txn = ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ])
        txn.execute()
        with pytest.raises(ReconfigurationError, match="already committed"):
            txn.commit()


class TestRollback:
    @pytest.mark.parametrize("kind", ["inline", "threaded", "process"])
    def test_nth_action_failure_restores_everything(self, kind):
        _server, stream = deploy()
        if kind == "inline":
            scheduler = InlineScheduler(stream)
        elif kind == "process":
            scheduler = ProcessScheduler(stream, shards=2)
            scheduler.start()
        else:
            scheduler = ThreadedScheduler(stream, poll_interval=0.0005)
            scheduler.start()
        try:
            park_in_b(stream, scheduler, n=3)
            before = fingerprint(stream)
            epoch_before = stream.epoch
            txn = ReconfigTransaction(stream, [
                ast.NewInstances("streamlet", ("x",), "tap"),
                # b.pi is already fed by a.po: this one fails mid-apply
                ast.Connect(ast.PortRef("x", "po"), ast.PortRef("b", "pi")),
            ])
            with pytest.raises(ReconfigAbortedError) as info:
                txn.commit(validate=False)
            assert info.value.failed_action == 1
            assert txn.state is TxnState.ROLLED_BACK
            assert fingerprint(stream) == before
            assert stream.epoch == epoch_before
            assert stream._txn is None
            assert "x" not in stream.processing_order()
            # the parked messages survive the failed commit and deliver
            stream.node("b").streamlet.activate()
            if kind == "inline":
                scheduler.pump()
            else:
                assert scheduler.drain(timeout=10)
            assert len(stream.collect()) == 3
            report = check_conservation(stream)
            assert report.balanced and report.lost == 0
        finally:
            if kind != "inline":
                scheduler.stop()
            if not stream.ended:
                stream.end()

    def test_rollback_under_faultplan_channel_close(self):
        # a FaultPlan closes the downstream channel; healing around b
        # then blows up mid-apply when pending ids are re-posted
        clock = VirtualClock()
        _server, stream = deploy(clock)
        scheduler = InlineScheduler(stream)
        park_in_b(stream, scheduler, n=3)
        plan = FaultPlan()
        plan.close_channel("__auto1", at=0.0)
        injector = FaultInjector(plan, clock=clock)
        injector.arm(stream)
        before = fingerprint(stream)
        txn = ReconfigTransaction(stream, [
            ast.RemoveInstance("extract", "b"),
        ])
        with pytest.raises(ReconfigAbortedError) as info:
            txn.commit(validate=False)
        assert info.value.failed_action == 0
        assert fingerprint(stream) == before
        assert stream.epoch == 0
        # conservation holds even though the wiring failed mid-heal
        report = check_conservation(stream)
        assert report.balanced
        injector.disarm()

    def test_failed_batch_with_created_and_removed_nodes(self):
        # the failing batch creates x, extracts tc-free b... and dies;
        # every node it created must be finalized, every removal undone
        _server, stream = deploy()
        scheduler = InlineScheduler(stream)
        park_in_b(stream, scheduler, n=2)
        before = fingerprint(stream)
        txn = ReconfigTransaction(stream, [
            ast.NewInstances("streamlet", ("x",), "tap"),
            ast.RemoveInstance("streamlet", "isink"),
            ast.Connect(ast.PortRef("x", "po"), ast.PortRef("nosuch", "pi")),
        ])
        with pytest.raises(ReconfigAbortedError) as info:
            txn.commit(validate=False)
        assert info.value.failed_action == 2
        assert fingerprint(stream) == before
        assert "isink" in stream._nodes  # the removal was undone


class TestProbation:
    def deploy_with_monitor(self, **kwargs):
        clock = VirtualClock()
        server, stream = deploy(clock)
        monitor = ProbationMonitor(stream, **kwargs).arm()
        return clock, server, stream, monitor

    def test_faulting_fresh_epoch_rolls_back_to_lkg(self):
        _clock, _server, stream, monitor = self.deploy_with_monitor(
            window=100.0, fault_threshold=2
        )
        good = fingerprint(stream)
        ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ]).execute()
        assert monitor.on_probation and stream.epoch == 1
        monitor.note_fault("tc")
        monitor.note_fault("tc")
        assert monitor.rollbacks == 1
        assert fingerprint(stream) == good
        assert stream.epoch == 2  # the rollback is itself a transition
        assert not monitor.on_probation

    def test_quiet_window_graduates_the_epoch(self):
        clock, _server, stream, monitor = self.deploy_with_monitor(
            window=5.0, fault_threshold=1
        )
        ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ]).execute()
        assert monitor.on_probation
        clock.advance(6.0)
        monitor.tick()
        assert not monitor.on_probation
        monitor.note_fault("tc")  # graduated: faults no longer roll back
        assert monitor.rollbacks == 0
        assert "tc" in stream.processing_order()

    def test_supervised_faults_trigger_rollback_and_conserve(self):
        clock = VirtualClock()
        server, stream = deploy(clock)
        scheduler = InlineScheduler(stream)
        supervisor = Supervisor(
            stream, RecoveryPolicy(max_retries=0), seed=3
        )
        supervisor.attach()
        monitor = ProbationMonitor(
            stream, window=100.0, fault_threshold=3
        ).arm(supervisor=supervisor)
        good = fingerprint(stream)
        ReconfigTransaction(stream, [
            ast.Insert(ast.PortRef("a", "po"), ast.PortRef("b", "pi"), "tc"),
        ]).execute()
        plan = FaultPlan(seed=1)
        plan.fail_streamlet("tc", mode="always")
        injector = FaultInjector(plan, clock=clock)
        injector.arm(stream)
        for i in range(3):
            stream.post(MimeMessage("text/plain", f"m{i}".encode()))
            scheduler.pump()
        assert monitor.rollbacks == 1
        assert fingerprint(stream) == good
        # the faulted messages were dead-lettered, later ones flow again
        injector.disarm()
        stream.post(MimeMessage("text/plain", b"after"))
        scheduler.pump()
        supervisor.settle(scheduler)
        delivered = stream.collect()
        assert [m.body for m in delivered] == [b"after"]
        report = check_conservation(stream)
        assert report.balanced and report.dead_letters == 3

    def test_rollback_without_record_rejected(self):
        _clock, _server, stream, monitor = self.deploy_with_monitor()
        with pytest.raises(ReconfigurationError, match="last-known-good"):
            monitor.rollback_to_lkg()

    def test_double_arm_rejected(self):
        _clock, _server, stream, monitor = self.deploy_with_monitor()
        with pytest.raises(ReconfigurationError, match="already"):
            ProbationMonitor(stream).arm()
        monitor.disarm()
        ProbationMonitor(stream).arm()  # free again after disarm
