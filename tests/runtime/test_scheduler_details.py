"""Focused tests for scheduler mechanics not covered elsewhere."""

import pytest

from repro.apps import build_server
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a, b, c = new-streamlet (tap);
  connect (a.po, b.pi);
  connect (b.po, c.pi);
}
"""


@pytest.fixture
def deployed():
    server = build_server()
    stream = server.deploy_script(SOURCE)
    return server, stream


class TestInlinePump:
    def test_pump_returns_move_count(self, deployed):
        _server, stream = deployed
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"x"))
        moved = scheduler.pump()
        assert moved == 3  # one message through three streamlets

    def test_pump_idle_returns_zero(self, deployed):
        _server, stream = deployed
        assert InlineScheduler(stream).pump() == 0

    def test_max_rounds_bounds_progress(self, deployed):
        _server, stream = deployed
        scheduler = InlineScheduler(stream)
        # pause downstream so each round moves exactly one hop
        stream.node("b").streamlet.pause()
        stream.node("c").streamlet.pause()
        stream.post(MimeMessage("text/plain", b"x"))
        moved = scheduler.pump(max_rounds=1)
        assert moved == 1
        assert stream.node("b").inputs["pi"].pending() == 1

    def test_run_to_completion_collects_trailing(self, deployed):
        _server, stream = deployed
        scheduler = InlineScheduler(stream)
        messages = [MimeMessage("text/plain", f"m{i}".encode()) for i in range(4)]
        outs = scheduler.run_to_completion(messages)
        assert [m.body for m in outs] == [f"m{i}".encode() for i in range(4)]

    def test_paused_node_skipped(self, deployed):
        _server, stream = deployed
        scheduler = InlineScheduler(stream)
        stream.node("b").streamlet.pause()
        stream.post(MimeMessage("text/plain", b"held"))
        scheduler.pump()
        assert stream.collect() == []
        stream.node("b").streamlet.activate()
        scheduler.pump()
        assert len(stream.collect()) == 1


class TestThreadedLifecycle:
    def test_double_start_rejected(self, deployed):
        _server, stream = deployed
        scheduler = ThreadedScheduler(stream)
        scheduler.start()
        try:
            with pytest.raises(RuntimeError):
                scheduler.start()
        finally:
            scheduler.stop()

    def test_worker_exits_when_instance_removed(self, deployed):
        _server, stream = deployed
        scheduler = ThreadedScheduler(stream, poll_interval=0.0005)
        scheduler.start()
        try:
            stream.remove_streamlet("b")  # heals a -> c
            import time

            time.sleep(0.01)  # worker notices and exits
            stream.post(MimeMessage("text/plain", b"through"))
            assert scheduler.drain(timeout=10)
            assert len(stream.collect()) == 1
        finally:
            scheduler.stop()

    def test_stop_idempotent_after_drain(self, deployed):
        _server, stream = deployed
        scheduler = ThreadedScheduler(stream)
        scheduler.start()
        scheduler.stop()
        scheduler.stop()  # second stop is a no-op
