"""Parallel execution plane under concurrent reconfiguration.

The contract under test: workers (and the inline pump) read the RCU-style
topology snapshot lock-free while reconfiguration transactions retire and
republish it; whatever interleaving results, the message-conservation
invariant (admitted == delivered + absorbed + drops + residual) must hold
— no id may leak or double-count — and the per-worker kill/respawn switch
used by fault injection must keep working against snapshot-reading
workers.
"""

import threading
import time

import pytest

from repro.apps import build_server
from repro.faults.invariant import check_conservation
from repro.mcl import astnodes as ast
from repro.mime.message import MimeMessage
from repro.runtime.reconfig import ReconfigTransaction
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler

N_STREAMLETS = 8
N_MESSAGES = 1000

_CHAIN = "\n".join(
    f"  connect (s{i}.po, s{i + 1}.pi);" for i in range(N_STREAMLETS - 1)
)
SOURCE = f"""
streamlet tap{{
  port{{ in pi : text/*; out po : text/plain; }}
}}
main stream stress{{
  streamlet {", ".join(f"s{i}" for i in range(N_STREAMLETS))} = new-streamlet (tap);
{_CHAIN}
}}
"""


def deploy():
    # a real wall clock: the threaded engine blocks on real conditions
    server = build_server(drop_timeout=5.0)
    stream = server.deploy_script(SOURCE)
    return server, stream


def execute_with_retry(stream, actions, label: str, timeout: float = 30.0) -> None:
    """Commit the batch, retrying while live traffic blocks the removal.

    Message-loss avoidance (section 6.6) rejects removing an instance
    whose input still holds messages; under live load that is expected —
    a real controller waits for the splice to drain and tries again.
    """
    from repro.errors import ReconfigValidationError

    deadline = time.monotonic() + timeout
    while True:
        try:
            ReconfigTransaction(stream, actions, label=label).execute()
            return
        except ReconfigValidationError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.002)


def splice_cycle(stream, index: int, scheduler=None) -> None:
    """One commit pair: splice a fresh tap into the chain, then remove it.

    With a threaded scheduler the fresh instance needs a worker before the
    removal can ever drain its input, so the spawn happens between the two
    commits — exactly what a live controller does.
    """
    name = f"x{index}"
    execute_with_retry(stream, [
        ast.NewInstances("streamlet", (name,), "tap"),
        ast.Insert(ast.PortRef("s3", "po"), ast.PortRef("s4", "pi"), name),
    ], label=f"splice-{index}")
    if scheduler is not None:
        scheduler.ensure_workers()
    execute_with_retry(stream, [
        ast.RemoveInstance("streamlet", name),
    ], label=f"unsplice-{index}")


def assert_conserved(stream, delivered: int, posted: int) -> None:
    report = check_conservation(stream)
    assert report.balanced, report.describe()
    # the pass-through chain rebinds in place: one pool id per post, and
    # every id we collected is one the ledger counted as delivered
    assert report.admitted == posted, report.describe()
    assert report.delivered == delivered, report.describe()


class TestStressConservation:
    """≥8 streamlets, ≥1k messages, reconfig commits racing the schedulers."""

    def test_threaded_scheduler_under_reconfig_storm(self):
        _server, stream = deploy()
        scheduler = ThreadedScheduler(stream)
        scheduler.start()
        errors: list[Exception] = []
        try:
            def feed():
                try:
                    for i in range(N_MESSAGES):
                        stream.post(MimeMessage("text/plain", b"m%d" % i))
                except Exception as exc:  # surfaced by the main thread
                    errors.append(exc)

            def reconfigure():
                try:
                    for i in range(10):
                        splice_cycle(stream, i, scheduler)
                        time.sleep(0.001)
                except Exception as exc:
                    errors.append(exc)

            feeder = threading.Thread(target=feed)
            rewirer = threading.Thread(target=reconfigure)
            feeder.start()
            rewirer.start()
            feeder.join(timeout=60)
            rewirer.join(timeout=60)
            assert not feeder.is_alive() and not rewirer.is_alive()
            assert not errors, errors
            assert scheduler.drain(timeout=60)
            delivered = len(stream.collect())
        finally:
            scheduler.stop()
            stream.end()
        assert_conserved(stream, delivered, N_MESSAGES)
        # the splice points really were exercised under load
        assert stream.epoch == 20
        assert delivered > 0

    def test_inline_scheduler_under_reconfig_storm(self):
        _server, stream = deploy()
        scheduler = InlineScheduler(stream)
        errors: list[Exception] = []
        done = threading.Event()

        def reconfigure():
            try:
                for i in range(10):
                    if done.is_set():
                        break
                    splice_cycle(stream, i)
            except Exception as exc:
                errors.append(exc)

        rewirer = threading.Thread(target=reconfigure)
        rewirer.start()
        delivered = 0
        try:
            window = 50
            for start in range(0, N_MESSAGES, window):
                for i in range(start, start + window):
                    stream.post(MimeMessage("text/plain", b"m%d" % i))
                scheduler.pump()
                delivered += len(stream.collect())
        finally:
            done.set()
            rewirer.join(timeout=60)
        assert not rewirer.is_alive()
        assert not errors, errors
        scheduler.pump()
        delivered += len(stream.collect())
        stream.end()
        assert_conserved(stream, delivered, N_MESSAGES)
        assert delivered > 0


class TestWorkerLifecycle:
    """kill_worker / ensure_workers against snapshot-reading workers."""

    @pytest.fixture
    def live(self):
        _server, stream = deploy()
        scheduler = ThreadedScheduler(stream)
        scheduler.start()
        yield stream, scheduler
        scheduler.stop()
        if not stream.ended:
            stream.end()

    def test_killed_worker_stalls_then_ensure_workers_heals(self, live):
        stream, scheduler = live
        assert scheduler.kill_worker("s4")
        assert scheduler.workers_killed == 1
        for i in range(30):
            stream.post(MimeMessage("text/plain", b"k%d" % i))
        # traffic piles up at the dead worker's input instead of flowing
        deadline = time.monotonic() + 10
        while stream.node("s4").inputs["pi"].pending() < 30:
            assert time.monotonic() < deadline, "messages never reached s4"
            time.sleep(0.002)
        assert len(stream.collect()) == 0
        scheduler.ensure_workers()  # respawn reads the current snapshot
        assert scheduler.drain(timeout=30)
        assert len(stream.collect()) == 30
        assert check_conservation(stream).balanced

    def test_kill_missing_worker_returns_false(self, live):
        _stream, scheduler = live
        assert not scheduler.kill_worker("nope")
        assert scheduler.workers_killed == 0

    def test_ensure_workers_covers_instances_added_by_reconfig(self, live):
        stream, scheduler = live
        ReconfigTransaction(stream, [
            ast.NewInstances("streamlet", ("late",), "tap"),
            ast.Insert(ast.PortRef("s0", "po"), ast.PortRef("s1", "pi"), "late"),
        ]).execute()
        scheduler.ensure_workers()
        deadline = time.monotonic() + 5
        while "late" not in scheduler._threads:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        assert scheduler._threads["late"].is_alive()
        for i in range(10):
            stream.post(MimeMessage("text/plain", b"l%d" % i))
        assert scheduler.drain(timeout=30)
        assert len(stream.collect()) == 10
        assert stream.node("late").streamlet.processed == 10

    def test_worker_for_removed_instance_exits(self, live):
        stream, scheduler = live
        ReconfigTransaction(stream, [
            ast.NewInstances("streamlet", ("gone",), "tap"),
            ast.Insert(ast.PortRef("s5", "po"), ast.PortRef("s6", "pi"), "gone"),
        ]).execute()
        scheduler.ensure_workers()
        ReconfigTransaction(stream, [
            ast.RemoveInstance("streamlet", "gone"),
        ]).execute()
        thread = scheduler._threads.get("gone")
        if thread is not None:
            thread.join(timeout=5)  # snapshot no longer names it: clean exit
            assert not thread.is_alive()
        for i in range(5):
            stream.post(MimeMessage("text/plain", b"g%d" % i))
        assert scheduler.drain(timeout=30)
        assert len(stream.collect()) == 5
