"""Runtime topology snapshots and re-verification (chapter 5 at runtime)."""

import pytest

from repro.apps import build_server
from repro.errors import FeedbackLoopError
from repro.runtime.scheduler import InlineScheduler
from repro.semantics import analyze
from repro.semantics.graph import StreamGraph

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream s{
  streamlet a = new-streamlet (tap);
  streamlet b = new-streamlet (tap);
  streamlet tc = new-streamlet (text_compress);
  streamlet spare1, spare2 = new-streamlet (tap);
  connect (a.po, b.pi);
}
"""


@pytest.fixture
def stream():
    server = build_server()
    return server.deploy_script(SOURCE)


class TestSnapshot:
    def test_matches_initial_table(self, stream):
        snap = stream.snapshot_table()
        assert set(snap.instances) == {"a", "b", "tc", "spare1", "spare2"}
        assert len(snap.links) == 1
        assert snap.links[0].source.instance == "a"
        assert snap.exposed_in and snap.exposed_out

    def test_reflects_reconfiguration(self, stream):
        stream.insert("a.po", "b.pi", "tc")
        snap = stream.snapshot_table()
        graph = StreamGraph.from_table(snap)
        assert graph.edges() == {("a", "tc"), ("tc", "b")}

    def test_reflects_extraction(self, stream):
        stream.insert("a.po", "b.pi", "tc")
        stream.extract_streamlet("tc")
        snap = stream.snapshot_table()
        assert StreamGraph.from_table(snap).edges() == {("a", "b")}
        assert "tc" in snap.dormant_instances()

    def test_snapshot_is_analyzable(self, stream):
        stream.insert("a.po", "b.pi", "tc")
        report = analyze(stream.snapshot_table())
        assert report.consistent, report.summary()


class TestRuntimeVerification:
    def test_clean_topology_passes(self, stream):
        stream.verify_topology()

    def test_runtime_created_loop_detected(self, stream):
        # a reconfiguration that accidentally wires a cycle between two
        # dormant instances (their ports are free, unlike exposed ports,
        # which carry ingress/egress channels from deployment)
        stream.connect("spare1.po", "spare2.pi")
        stream.connect("spare2.po", "spare1.pi")
        with pytest.raises(FeedbackLoopError):
            stream.verify_topology()

    def test_detection_does_not_break_running_stream(self, stream):
        from repro.mime.message import MimeMessage

        stream.insert("a.po", "b.pi", "tc")
        stream.verify_topology()
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"still flowing"))
        scheduler.pump()
        assert len(stream.collect()) == 1
