"""Property tests for the shared-memory primitives of the process plane.

The contract under test (repro.runtime.shm): the SPSC ring delivers
descriptors in FIFO order across arbitrary post/claim interleavings,
including wrap-around of its monotonic counters; full and empty
boundaries are exact (a full ring refuses, an empty ring returns
nothing, nothing is lost or duplicated either way); the byte arena
bump-allocates in descriptor order, skips the wrap gap, and reclaims
with a single counter; a ShardSegment combines both and never leaks its
/dev/shm entry.  Ring and arena run over a plain bytearray here — the
layout maths is identical, no shared memory needed.
"""

import os
import random
from collections import deque

import pytest

from repro.runtime.shm import (
    ARENA_HEADER,
    ByteArena,
    Doorbell,
    ShardSegment,
    SpscRing,
    SLOT_SIZE,
)


def make_ring(slots):
    buf = bytearray(SpscRing.region_size(slots))
    return SpscRing(buf, slots)


def desc(i, payload_len=0, offset=0):
    return (f"msg-{i}", 1, 0, i, i * 2, offset, payload_len)


class TestRingBoundaries:
    def test_empty_ring_claims_nothing(self):
        ring = make_ring(4)
        assert ring.claim_batch(16) == []
        assert len(ring) == 0
        assert ring.free_slots() == 4

    def test_full_ring_refuses_post(self):
        ring = make_ring(4)
        for i in range(4):
            assert ring.post(desc(i))
        assert ring.free_slots() == 0
        assert not ring.post(desc(99))
        got = ring.claim_batch(99)
        assert [g[0] for g in got] == [f"msg-{i}" for i in range(4)]

    def test_claim_frees_slots_for_reuse(self):
        ring = make_ring(2)
        assert ring.post(desc(0))
        assert ring.post(desc(1))
        assert not ring.post(desc(2))
        assert len(ring.claim_batch(1)) == 1
        assert ring.post(desc(2))  # the freed slot is immediately reusable
        assert [g[0] for g in ring.claim_batch(9)] == ["msg-1", "msg-2"]

    def test_minimum_two_slots_enforced(self):
        with pytest.raises(ValueError):
            make_ring(1)

    def test_oversized_id_rejected(self):
        ring = make_ring(4)
        with pytest.raises(ValueError):
            ring.post(("x" * 33, 1, 0, 0, 0, 0, 0))

    def test_descriptor_fields_roundtrip(self):
        ring = make_ring(4)
        ring.post(("id-7", 3, 1, 123, 456, 789, 10))
        (msg_id, kind, flags, a, b, off, length), = ring.claim_batch(1)
        assert (msg_id, kind, flags, a, b, off, length) == (
            "id-7", 3, 1, 123, 456, 789, 10
        )


class TestRingWrapAround:
    def test_counters_pass_slot_count_many_times(self):
        ring = make_ring(4)
        for i in range(100):  # 25 full revolutions of a 4-slot ring
            assert ring.post(desc(i))
            got = ring.claim_batch(1)
            assert got and got[0][0] == f"msg-{i}"
        assert ring.head == 100 and ring.tail == 100

    def test_batched_wrap_preserves_fifo(self):
        ring = make_ring(8)
        expect = deque()
        serial = 0
        for _round in range(50):
            n = ring.post_batch([desc(serial + k) for k in range(5)])
            for k in range(n):
                expect.append(f"msg-{serial + k}")
            serial += n
            for got in ring.claim_batch(3):
                assert got[0] == expect.popleft()
        for got in ring.claim_batch(99):
            assert got[0] == expect.popleft()
        assert not expect

    def test_post_batch_partial_fill(self):
        ring = make_ring(4)
        assert ring.post(desc(0))
        posted = ring.post_batch([desc(i) for i in range(1, 10)])
        assert posted == 3  # only the free slots were taken
        assert [g[0] for g in ring.claim_batch(99)] == [
            "msg-0", "msg-1", "msg-2", "msg-3"
        ]


class TestRingInterleavings:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_random_interleavings_match_deque_model(self, seed):
        """Seeded producer/consumer schedules vs an exact deque model."""
        rng = random.Random(seed)
        slots = rng.choice([2, 3, 4, 8, 16])
        ring = make_ring(slots)
        model = deque()
        serial = 0
        for _step in range(400):
            if rng.random() < 0.5:
                batch = [desc(serial + k) for k in range(rng.randint(1, 6))]
                if rng.random() < 0.5:
                    posted = ring.post_batch(batch)
                else:
                    posted = 0
                    for d in batch:
                        if not ring.post(d):
                            break
                        posted += 1
                assert posted == min(len(batch), slots - len(model))
                for k in range(posted):
                    model.append(f"msg-{serial + k}")
                serial += len(batch)
            else:
                want = rng.randint(1, 8)
                got = ring.claim_batch(want)
                assert len(got) == min(want, len(model))
                for g in got:
                    assert g[0] == model.popleft()
            assert len(ring) == len(model)
            assert ring.free_slots() == slots - len(model)
        for g in ring.claim_batch(10**6):
            assert g[0] == model.popleft()
        assert not model


class TestByteArena:
    def make(self, capacity=128):
        buf = bytearray(ByteArena.region_size(capacity))
        return ByteArena(buf, capacity)

    def test_alloc_read_roundtrip(self):
        arena = self.make()
        off = arena.alloc(b"hello world")
        assert off is not None
        assert arena.read(off, 11) == b"hello world"

    def test_full_arena_refuses(self):
        arena = self.make(128)
        assert arena.alloc(b"x" * 120) is not None
        assert arena.alloc(b"y" * 16) is None

    def test_release_reclaims_fifo(self):
        arena = self.make(128)
        first = arena.alloc(b"a" * 64)
        second = arena.alloc(b"b" * 56)
        assert arena.alloc(b"c" * 32) is None
        arena.release_to(first, 64)
        third = arena.alloc(b"c" * 32)
        assert third is not None
        assert arena.read(second, 56) == b"b" * 56
        assert arena.read(third, 32) == b"c" * 32

    def test_wrap_gap_skipped(self):
        arena = self.make(128)
        first = arena.alloc(b"a" * 96)
        arena.release_to(first, 96)
        # 96 bytes used then freed: a 64-byte block cannot straddle the
        # end, so the allocator skips the 32-byte gap and wraps to 0
        wrapped = arena.alloc(b"b" * 64)
        assert wrapped is not None
        assert wrapped % arena.capacity == 0
        assert arena.read(wrapped, 64) == b"b" * 64

    def test_many_revolutions_preserve_content(self):
        arena = self.make(256)
        rng = random.Random(3)
        live = deque()
        for i in range(500):
            body = bytes([i % 256]) * rng.randint(1, 48)
            off = arena.alloc(body)
            while off is None:
                gone_off, gone_body = live.popleft()
                arena.release_to(gone_off, len(gone_body))
                off = arena.alloc(body)
            live.append((off, body))
            for got_off, got_body in live:
                assert arena.read(got_off, len(got_body)) == got_body


class TestShardSegment:
    def test_send_receive_and_unlink(self):
        seg = ShardSegment(f"test_spsc_{os.getpid()}", slots=8, arena_bytes=1024)
        try:
            assert seg.send("m-1", 1, 0, 5, 6, b"payload-one")
            assert seg.send("m-2", 2, 1, 7, 8)
            got = seg.receive()
            assert got == [
                ("m-1", 1, 0, 5, 6, b"payload-one"),
                ("m-2", 2, 1, 7, 8, b""),
            ]
        finally:
            seg.destroy()
        assert not os.path.exists(f"/dev/shm/{seg.name}")
        seg.destroy()  # idempotent

    def test_fits_is_about_capacity_not_occupancy(self):
        seg = ShardSegment(f"test_fits_{os.getpid()}", slots=4, arena_bytes=256)
        try:
            assert seg.fits(256)
            assert not seg.fits(257)
            assert seg.send("m", 1, 0, 0, 0, b"x" * 200)
            assert seg.fits(256)  # would fit once the reader drains
            assert not seg.send("m2", 1, 0, 0, 0, b"y" * 100)  # but not now
        finally:
            seg.destroy()

    def test_full_ring_blocks_send_without_losing_arena_space(self):
        seg = ShardSegment(f"test_fullring_{os.getpid()}", slots=2, arena_bytes=1024)
        try:
            assert seg.send("a", 1, 0, 0, 0, b"one")
            assert seg.send("b", 1, 0, 0, 0, b"two")
            used = seg.arena.used()
            assert not seg.send("c", 1, 0, 0, 0, b"three")
            assert seg.arena.used() == used  # the refused send allocated nothing
            assert [g[0] for g in seg.receive()] == ["a", "b"]
        finally:
            seg.destroy()


class TestDoorbell:
    def test_ring_then_drain(self):
        bell = Doorbell()
        try:
            bell.ring()
            assert os.read(bell.read_fd, 1) == b"\x00"
            bell.ring()
            bell.ring()
            bell.drain()
            with pytest.raises(BlockingIOError):
                os.read(bell.read_fd, 1)
        finally:
            bell.close()

    def test_ring_never_blocks_when_pipe_full(self):
        bell = Doorbell()
        try:
            for _ in range(100_000):
                bell.ring()  # far beyond the pipe buffer; must not raise
        finally:
            bell.close()
