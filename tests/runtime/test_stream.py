import pytest

from repro.errors import CompositionError, ReconfigurationError
from repro.mcl import astnodes as ast
from repro.mime.message import MimeMessage
from repro.runtime.directory import StreamletDirectory
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.runtime.server import MobiGateServer
from repro.runtime.streamlet import Streamlet

DEFS = """
streamlet upper{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet exclaim{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet tag{
  port{ in pi : text/*; out po : text/plain; }
}
"""

PIPELINE = DEFS + """
main stream pipe{
  streamlet u = new-streamlet (upper);
  streamlet e = new-streamlet (exclaim);
  connect (u.po, e.pi);
}
"""


class Upper(Streamlet):
    def process(self, port, message, ctx):
        message.set_body(message.body.decode().upper().encode())
        return [("po", message)]


class Exclaim(Streamlet):
    def process(self, port, message, ctx):
        message.set_body(message.body + b"!")
        return [("po", message)]


class Tag(Streamlet):
    peer_id = "untag"

    def process(self, port, message, ctx):
        message.set_body(b"[" + message.body + b"]")
        return [("po", message)]


class Absorb(Streamlet):
    def process(self, port, message, ctx):
        return []


@pytest.fixture
def server():
    srv = MobiGateServer()
    for name, cls in [("upper", Upper), ("exclaim", Exclaim), ("tag", Tag)]:
        # definitions come from the script; advertise only the factories
        pass
    return srv


def deploy(server, source, **kw):
    # register implementation factories for script-local definitions
    from repro.mcl.parser import parse_script

    impls = {"upper": Upper, "exclaim": Exclaim, "tag": Tag}
    for d in parse_script(source).streamlets:
        if d.name in impls and d.name not in server.directory:
            server.directory.advertise(d, impls[d.name])
    return server.deploy_script(source, **kw)


def text(body=b"hello"):
    return MimeMessage("text/plain", body)


class TestBasicFlow:
    def test_two_stage_pipeline(self, server):
        stream = deploy(server, PIPELINE)
        scheduler = InlineScheduler(stream)
        stream.post(text(b"hello"))
        scheduler.pump()
        [out] = stream.collect()
        assert out.body == b"HELLO!"

    def test_message_order_preserved(self, server):
        stream = deploy(server, PIPELINE)
        scheduler = InlineScheduler(stream)
        for i in range(5):
            stream.post(text(f"m{i}".encode()))
        scheduler.pump()
        bodies = [m.body for m in stream.collect()]
        assert bodies == [f"M{i}!".encode() for i in range(5)]

    def test_session_stamped(self, server):
        stream = deploy(server, PIPELINE)
        scheduler = InlineScheduler(stream)
        stream.post(text())
        scheduler.pump()
        [out] = stream.collect()
        assert out.session == stream.session

    def test_stats(self, server):
        stream = deploy(server, PIPELINE)
        InlineScheduler(stream).run_to_completion([text(), text()])
        assert stream.stats.messages_in == 2
        assert stream.stats.messages_out == 2
        assert stream.stats.processed == 4  # 2 messages x 2 streamlets

    def test_pass_by_reference_no_copies(self, server):
        stream = deploy(server, PIPELINE)
        InlineScheduler(stream).run_to_completion([text()])
        assert stream.pool.copies == 0

    def test_peer_stack_pushed(self, server):
        source = DEFS + """
main stream tagged{
  streamlet t = new-streamlet (tag);
  streamlet e = new-streamlet (exclaim);
  connect (t.po, e.pi);
}
"""
        stream = deploy(server, source)
        [out] = InlineScheduler(stream).run_to_completion([text(b"x")])
        assert out.headers.peer_stack() == ["untag"]

    def test_post_bad_port(self, server):
        stream = deploy(server, PIPELINE)
        with pytest.raises(CompositionError):
            stream.post(text(), 5)
        with pytest.raises(CompositionError):
            stream.post(text(), "ghost.pi")

    def test_end_releases_instances(self, server):
        stream = deploy(server, PIPELINE)
        stream.end()
        assert stream.ended
        # pooled stateless instances returned
        assert server.manager.pool_stats()["upper"]["idle"] >= 1


class TestThreadedScheduler:
    def test_pipeline_delivery(self, server):
        stream = deploy(server, PIPELINE)
        scheduler = ThreadedScheduler(stream, poll_interval=0.0005)
        scheduler.start()
        try:
            for i in range(20):
                stream.post(text(f"m{i}".encode()))
            assert scheduler.drain(timeout=10)
            bodies = [m.body for m in stream.collect()]
            assert bodies == [f"M{i}!".encode() for i in range(20)]
        finally:
            scheduler.stop()


class TestReconfiguration:
    def test_runtime_connect_disconnect(self, server):
        source = DEFS + """
main stream rewire{
  streamlet u = new-streamlet (upper);
  streamlet e = new-streamlet (exclaim);
  streamlet t = new-streamlet (tag);
  connect (u.po, e.pi);
}
"""
        stream = deploy(server, source)
        scheduler = InlineScheduler(stream)
        [out] = scheduler.run_to_completion([text(b"a")])
        assert out.body == b"A!"
        # splice the dormant tag streamlet between u and e
        timing = stream.insert("u.po", "e.pi", "t")
        assert timing.total >= 0
        [out] = scheduler.run_to_completion([text(b"b")])
        assert out.body == b"[B]!"

    def test_insert_requires_existing_link(self, server):
        source = DEFS + """
main stream rewire{
  streamlet u = new-streamlet (upper);
  streamlet e = new-streamlet (exclaim);
  streamlet t = new-streamlet (tag);
  connect (u.po, e.pi);
}
"""
        stream = deploy(server, source)
        with pytest.raises(ReconfigurationError):
            stream.insert("e.po", "u.pi", "t")

    def test_remove_heals_pipeline(self, server):
        source = DEFS + """
main stream three{
  streamlet u = new-streamlet (upper);
  streamlet t = new-streamlet (tag);
  streamlet e = new-streamlet (exclaim);
  connect (u.po, t.pi);
  connect (t.po, e.pi);
}
"""
        stream = deploy(server, source)
        scheduler = InlineScheduler(stream)
        [out] = scheduler.run_to_completion([text(b"a")])
        assert out.body == b"[A]!"
        stream.remove_streamlet("t")
        [out] = scheduler.run_to_completion([text(b"b")])
        assert out.body == b"B!"
        assert "t" not in stream.instance_names()

    def test_remove_with_pending_messages_blocked(self, server):
        stream = deploy(server, PIPELINE)
        stream.post(text())
        # nothing pumped: u's ingress queue holds the message
        with pytest.raises(ReconfigurationError):
            stream.remove_streamlet("u")

    def test_remove_preserves_inflight_order(self, server):
        source = DEFS + """
main stream three{
  streamlet u = new-streamlet (upper);
  streamlet t = new-streamlet (tag);
  streamlet e = new-streamlet (exclaim);
  connect (u.po, t.pi);
  connect (t.po, e.pi);
}
"""
        stream = deploy(server, source)
        scheduler = InlineScheduler(stream)
        # move one message exactly one hop: it sits tagged in t->e channel
        stream.post(text(b"a"))
        scheduler.pump(max_rounds=1)
        # now remove t (its input is empty; its output channel holds [A])
        stream.remove_streamlet("t")
        stream.post(text(b"b"))
        scheduler.pump()
        bodies = [m.body for m in stream.collect()]
        assert bodies == [b"[A]!", b"B!"]

    def test_replace_swaps_behaviour(self, server):
        source = DEFS + """
main stream swap{
  streamlet u = new-streamlet (upper);
  streamlet e = new-streamlet (exclaim);
  streamlet t = new-streamlet (tag);
  connect (u.po, e.pi);
}
"""
        stream = deploy(server, source)
        scheduler = InlineScheduler(stream)
        # tag and exclaim share port names pi/po, so they are swappable
        stream.replace("e", "t")
        [out] = scheduler.run_to_completion([text(b"x")])
        assert out.body == b"[X]"
        assert "e" not in stream.instance_names()

    def test_event_handler_inserts_streamlet(self, server):
        source = DEFS + """
main stream adaptive{
  streamlet u = new-streamlet (upper);
  streamlet e = new-streamlet (exclaim);
  connect (u.po, e.pi);
  when (LOW_BANDWIDTH){
    streamlet t = new-streamlet (tag);
    insert (u.po, e.pi, t);
  }
}
"""
        stream = deploy(server, source)
        scheduler = InlineScheduler(stream)
        [before] = scheduler.run_to_completion([text(b"a")])
        assert before.body == b"A!"
        delivered = server.events.raise_event("LOW_BANDWIDTH")
        assert delivered == 1
        assert stream.last_reconfig is not None
        [after] = scheduler.run_to_completion([text(b"b")])
        assert after.body == b"[B]!"

    def test_event_scoping_ignores_other_sources(self, server):
        source = DEFS + """
main stream scoped{
  streamlet u = new-streamlet (upper);
  streamlet e = new-streamlet (exclaim);
  connect (u.po, e.pi);
  when (LOW_BANDWIDTH){
    streamlet t = new-streamlet (tag);
    insert (u.po, e.pi, t);
  }
}
"""
        stream = deploy(server, source)
        server.events.raise_event("LOW_BANDWIDTH", source="someone-else")
        assert stream.last_reconfig is None

    def test_unsubscribed_event_ignored(self, server):
        stream = deploy(server, PIPELINE)
        server.events.raise_event("LOW_ENERGY")
        assert stream.stats.events_handled == 0


class TestOpenCircuitAtRuntime:
    def test_three_stage_pipeline(self):
        server = MobiGateServer()
        source = DEFS + """
main stream chain{
  streamlet u = new-streamlet (upper);
  streamlet e = new-streamlet (exclaim);
  streamlet t = new-streamlet (tag);
  connect (u.po, e.pi);
  connect (e.po, t.pi);
}
"""
        stream = deploy(server, source)
        [out] = InlineScheduler(stream).run_to_completion([text(b"a")])
        assert out.body == b"[A!]"

    def test_emission_to_unconnected_port_dropped(self):
        server = MobiGateServer()
        stream = deploy(server, PIPELINE)
        scheduler = InlineScheduler(stream)
        # sever the u -> e link at runtime: u's emissions have nowhere to go
        stream.disconnect("u.po", "e.pi")
        stream.post(text(b"lost"))
        scheduler.pump()
        assert stream.collect() == []
        assert stream.stats.open_circuit_drops == 1
        assert len(stream.pool) == 0  # dropped message released from the pool
