import pytest

from repro.errors import LifecycleError
from repro.mcl import astnodes as ast
from repro.mime.mediatype import ANY
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import (
    ForwardingStreamlet,
    Streamlet,
    StreamletContext,
    StreamletState,
)


def make_def(name="stage", kind=ast.StreamletKind.STATELESS, n_out=1):
    ports = [ast.PortDecl(ast.PortDirection.IN, "pi", ANY)]
    for index in range(n_out):
        ports.append(ast.PortDecl(ast.PortDirection.OUT, f"po{index}" if n_out > 1 else "po", ANY))
    return ast.StreamletDef(name=name, ports=tuple(ports), kind=kind)


class TestLifecycle:
    def test_initial_state(self):
        s = Streamlet("s1", make_def())
        assert s.state is StreamletState.CREATED

    def test_activate_pause_resume_end(self):
        s = Streamlet("s1", make_def())
        s.activate()
        assert s.is_active
        s.pause()
        assert s.state is StreamletState.PAUSED
        s.activate()
        s.end()
        assert s.state is StreamletState.ENDED

    def test_illegal_transitions(self):
        s = Streamlet("s1", make_def())
        with pytest.raises(LifecycleError):
            s.pause()  # created -> paused not allowed
        s.activate()
        with pytest.raises(LifecycleError):
            s.activate()
        s.end()
        with pytest.raises(LifecycleError):
            s.activate()

    def test_end_from_any_live_state(self):
        for prep in [lambda s: None, lambda s: s.activate(),
                     lambda s: (s.activate(), s.pause())]:
            s = Streamlet("s1", make_def())
            prep(s)
            s.end()
            assert s.state is StreamletState.ENDED


class TestProcess:
    def test_default_forwards(self):
        s = Streamlet("s1", make_def())
        m = MimeMessage("text/plain", b"x")
        out = s.process("pi", m, StreamletContext("s1"))
        assert out == [("po", m)]

    def test_default_requires_single_output(self):
        s = Streamlet("s1", make_def(n_out=2))
        with pytest.raises(NotImplementedError):
            s.process("pi", MimeMessage("text/plain", b""), StreamletContext("s1"))

    def test_forwarding_streamlet_stamps_length(self):
        s = ForwardingStreamlet("r1", make_def())
        m = MimeMessage("text/plain", b"12345")
        [(port, out)] = s.process("pi", m, StreamletContext("r1"))
        assert port == "po"
        assert out.headers.get("Content-Length") == "5"


class TestPoolingSupport:
    def test_is_stateless(self):
        assert Streamlet("s", make_def(kind=ast.StreamletKind.STATELESS)).is_stateless
        assert not Streamlet("s", make_def(kind=ast.StreamletKind.STATEFUL)).is_stateless

    def test_rebind_resets(self):
        s = Streamlet("old", make_def())
        s.activate()
        s.processed = 7
        s.rebind("new")
        assert s.instance_id == "new"
        assert s.state is StreamletState.CREATED
        assert s.processed == 0
