"""Built-in System Command behaviour (Table 6-1: PAUSE / RESUME / END)."""

import pytest

from repro.apps import build_server
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler
from repro.runtime.streamlet import StreamletState

SOURCE = """
main stream sys{
  streamlet c = new-streamlet (text_compress);
  streamlet e = new-streamlet (encryptor);
  connect (c.po, e.pi);
}
"""


@pytest.fixture
def deployed():
    server = build_server()
    stream = server.deploy_script(SOURCE)
    return server, stream, InlineScheduler(stream)


class TestPauseResume:
    def test_pause_suspends_processing(self, deployed):
        server, stream, scheduler = deployed
        server.events.raise_event("PAUSE")
        assert all(
            stream.node(n).streamlet.state is StreamletState.PAUSED
            for n in stream.instance_names()
        )
        stream.post(MimeMessage("text/plain", b"held"))
        scheduler.pump()
        assert stream.collect() == []  # nothing processed while paused

    def test_resume_drains_backlog(self, deployed):
        server, stream, scheduler = deployed
        server.events.raise_event("PAUSE")
        stream.post(MimeMessage("text/plain", b"queued while paused"))
        scheduler.pump()
        server.events.raise_event("RESUME")
        scheduler.pump()
        assert len(stream.collect()) == 1  # no message lost across the pause

    def test_resume_only_touches_paused(self, deployed):
        server, stream, _ = deployed
        stream.node("c").streamlet.pause()
        stream.node("c").streamlet.activate()
        server.events.raise_event("RESUME")  # all active: no-op, no error


class TestEnd:
    def test_end_tears_down(self, deployed):
        server, stream, _ = deployed
        server.events.raise_event("END")
        assert stream.ended
        assert all(
            stream.node(n).streamlet.state is StreamletState.ENDED
            for n in stream.instance_names()
        )

    def test_scoped_end_spares_other_streams(self):
        server = build_server()
        a = server.deploy_script(SOURCE.replace("sys", "a"), stream="a")
        b = server.deploy_script(SOURCE.replace("sys", "b"), stream="b")
        server.events.raise_event("END", source="a")
        assert a.ended
        assert not b.ended


class TestSubscription:
    def test_every_stream_gets_system_commands(self, deployed):
        # no when-handlers in SOURCE, yet PAUSE reaches the stream
        server, stream, _ = deployed
        from repro.events import EventCategory

        assert server.events.subscriber_count(EventCategory.SYSTEM_COMMAND) == 1


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_from_docstring(self):
        from repro import InlineScheduler, MimeMessage, build_server

        server = build_server()
        stream = server.deploy_script(SOURCE)
        scheduler = InlineScheduler(stream)
        stream.post(MimeMessage("text/plain", b"hello " * 100))
        scheduler.pump()
        [wire] = stream.collect()
        assert wire.headers.peer_stack() == ["text_decompress", "decryptor"]
