"""Concurrency: reconfiguration while the threaded scheduler is running.

The thesis runs its reconfiguration experiments on a live multithreaded
system; these tests verify the topology lock keeps wiring changes and
message processing mutually consistent — no lost messages, no crashes —
when events land mid-flight.
"""

import threading
import time

import pytest

from repro.apps import build_server
from repro.client.client import MobiGateClient
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import ThreadedScheduler

SOURCE = """
streamlet tap{
  port{ in pi : text/*; out po : text/plain; }
}
main stream live{
  streamlet a = new-streamlet (tap);
  streamlet b = new-streamlet (tap);
  streamlet tc = new-streamlet (text_compress);
  connect (a.po, b.pi);
  when (LOW_BANDWIDTH){ insert (a.po, b.pi, tc); }
}
"""


@pytest.fixture
def live_stream():
    server = build_server()
    stream = server.deploy_script(SOURCE)
    scheduler = ThreadedScheduler(stream, poll_interval=0.0005)
    scheduler.start()
    yield server, stream, scheduler
    scheduler.stop()
    if not stream.ended:
        stream.end()


class TestThreadedReconfiguration:
    def test_insert_under_load(self, live_stream):
        server, stream, scheduler = live_stream
        client = MobiGateClient()
        payloads = [f"message-{i}".encode() * 5 for i in range(60)]

        def feed():
            for payload in payloads:
                stream.post(MimeMessage("text/plain", payload))
                time.sleep(0.0002)

        feeder = threading.Thread(target=feed)
        feeder.start()
        time.sleep(0.004)  # let some traffic flow uncompressed
        with stream.topology_lock:
            # simulate the event manager firing mid-stream: the lock
            # serialises the rewire against in-flight processing
            stream.insert("a.po", "b.pi", "tc")
        scheduler.ensure_workers()
        feeder.join()
        assert scheduler.drain(timeout=15)

        delivered = []
        for wire in stream.collect():
            delivered.extend(client.receive(wire))
        # nothing lost, nothing reordered
        assert [m.body for m in delivered] == payloads
        # and the tail of the traffic really was compressed
        assert stream.node("tc").streamlet.processed > 0

    def test_event_driven_insert_under_load(self, live_stream):
        server, stream, scheduler = live_stream
        client = MobiGateClient()
        payloads = [f"p{i}".encode() * 10 for i in range(40)]

        stop = threading.Event()

        def feed():
            for payload in payloads:
                stream.post(MimeMessage("text/plain", payload))
                time.sleep(0.0002)
            stop.set()

        feeder = threading.Thread(target=feed)
        feeder.start()
        time.sleep(0.003)
        server.events.raise_event("LOW_BANDWIDTH")  # handler runs under lock
        scheduler.ensure_workers()
        feeder.join()
        assert scheduler.drain(timeout=15)
        delivered = []
        for wire in stream.collect():
            delivered.extend(client.receive(wire))
        assert [m.body for m in delivered] == payloads
        assert stream.stats.events_handled == 1
