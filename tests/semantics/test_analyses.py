import pytest

from repro.errors import (
    DependencyError,
    FeedbackLoopError,
    MutualExclusionError,
    OpenCircuitError,
    PreorderError,
)
from repro.mcl.compiler import compile_script
from repro.semantics import analyze, verify
from repro.semantics.analyzer import ViolationKind

DEFS = """
streamlet stage{
  port{ in pi : */*; out po : */*; }
}
streamlet sink{
  port{ in pi : */*; }
}
streamlet source{
  port{ out po : */*; }
}
streamlet splitter{
  port{ in pi : */*; out po1 : */*; out po2 : */*; }
}
streamlet encryptor{
  port{ in pi : */*; out po : */*; }
  attribute{ requires = "decryptor_reg"; }
}
streamlet decryptor_reg{
  port{ in pi : */*; out po : */*; }
}
streamlet compressor{
  port{ in pi : */*; out po : */*; }
  attribute{ after = "encryptor"; }
}
streamlet colorize{
  port{ in pi : */*; out po : */*; }
  attribute{ excludes = "grayscale"; }
}
streamlet grayscale{
  port{ in pi : */*; out po : */*; }
}
"""


def table_of(body: str):
    return compile_script(DEFS + f"stream s{{ {body} }}").tables["s"]


GOOD = (
    "streamlet src = new-streamlet (source);"
    "streamlet mid = new-streamlet (stage);"
    "streamlet end = new-streamlet (sink);"
    "connect (src.po, mid.pi);"
    "connect (mid.po, end.pi);"
)


class TestFeedbackLoops:
    def test_clean(self):
        report = analyze(table_of(GOOD))
        assert not report.of_kind(ViolationKind.FEEDBACK_LOOP)

    def test_thesis_5_3_example(self):
        # the section 5.3 case: s1 -> s2 -> s3 -> s1
        table = table_of(
            "streamlet s1, s2, s3 = new-streamlet (stage);"
            "connect (s1.po, s2.pi);"
            "connect (s2.po, s3.pi);"
            "connect (s3.po, s1.pi);"
        )
        report = analyze(table)
        loops = report.of_kind(ViolationKind.FEEDBACK_LOOP)
        assert len(loops) == 1
        assert "feedback loop" in loops[0].message
        with pytest.raises(FeedbackLoopError):
            verify(table)


class TestOpenCircuit:
    def test_dangling_chain_end(self):
        # thesis-style closed analysis: a dangling non-terminal output is
        # an open circuit (section 5.2.2)
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet mid = new-streamlet (stage);"
            "connect (src.po, mid.pi);"
        )
        report = analyze(table, exposed_ports_bound=False)
        msgs = [v.message for v in report.of_kind(ViolationKind.OPEN_CIRCUIT)]
        assert any("mid" in m and "no outgoing" in m for m in msgs)

    def test_deployment_view_treats_exposed_as_egress(self):
        # default view: exposed ports get real egress channels at deploy
        # time, so the same composition is consistent
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet mid = new-streamlet (stage);"
            "connect (src.po, mid.pi);"
        )
        assert not analyze(table).of_kind(ViolationKind.OPEN_CIRCUIT)

    def test_terminal_definition_exempt(self):
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet mid = new-streamlet (stage);"
            "connect (src.po, mid.pi);"
        )
        report = analyze(
            table, terminal_definitions={"stage"}, exposed_ports_bound=False
        )
        assert not report.of_kind(ViolationKind.OPEN_CIRCUIT)

    def test_interface_sink_is_fine(self):
        assert analyze(table_of(GOOD), exposed_ports_bound=False).consistent

    def test_partially_wired_splitter(self):
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet sp = new-streamlet (splitter);"
            "streamlet end = new-streamlet (sink);"
            "connect (src.po, sp.pi);"
            "connect (sp.po1, end.pi);"
        )
        report = analyze(table, exposed_ports_bound=False)
        msgs = [v.message for v in report.of_kind(ViolationKind.OPEN_CIRCUIT)]
        assert any("po2" in m for m in msgs)

    def test_verify_raises(self):
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet mid = new-streamlet (stage);"
            "connect (src.po, mid.pi);"
        )
        with pytest.raises(OpenCircuitError):
            verify(table, exposed_ports_bound=False)


class TestMutualExclusion:
    def test_excluded_on_same_path(self):
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet c = new-streamlet (colorize);"
            "streamlet g = new-streamlet (grayscale);"
            "streamlet end = new-streamlet (sink);"
            "connect (src.po, c.pi);"
            "connect (c.po, g.pi);"
            "connect (g.po, end.pi);"
        )
        report = analyze(table)
        assert report.of_kind(ViolationKind.MUTUAL_EXCLUSION)
        with pytest.raises(MutualExclusionError):
            verify(table)

    def test_excluded_on_parallel_branches_ok(self):
        table = table_of(
            "streamlet src = new-streamlet (splitter);"
            "streamlet c = new-streamlet (colorize);"
            "streamlet g = new-streamlet (grayscale);"
            "streamlet e1, e2 = new-streamlet (sink);"
            "connect (src.po1, c.pi);"
            "connect (src.po2, g.pi);"
            "connect (c.po, e1.pi);"
            "connect (g.po, e2.pi);"
        )
        report = analyze(table)
        assert not report.of_kind(ViolationKind.MUTUAL_EXCLUSION)

    def test_relation_symmetric(self):
        # 'colorize excludes grayscale' also bans grayscale->colorize order
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet g = new-streamlet (grayscale);"
            "streamlet c = new-streamlet (colorize);"
            "streamlet end = new-streamlet (sink);"
            "connect (src.po, g.pi);"
            "connect (g.po, c.pi);"
            "connect (c.po, end.pi);"
        )
        assert analyze(table).of_kind(ViolationKind.MUTUAL_EXCLUSION)


class TestDependency:
    def test_missing_partner(self):
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet e = new-streamlet (encryptor);"
            "streamlet end = new-streamlet (sink);"
            "connect (src.po, e.pi);"
            "connect (e.po, end.pi);"
        )
        report = analyze(table)
        assert report.of_kind(ViolationKind.DEPENDENCY)
        with pytest.raises(DependencyError):
            verify(table)

    def test_partner_present_on_path(self):
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet e = new-streamlet (encryptor);"
            "streamlet d = new-streamlet (decryptor_reg);"
            "streamlet end = new-streamlet (sink);"
            "connect (src.po, e.pi);"
            "connect (e.po, d.pi);"
            "connect (d.po, end.pi);"
        )
        assert not analyze(table).of_kind(ViolationKind.DEPENDENCY)

    def test_partner_on_disjoint_branch_flagged(self):
        table = table_of(
            "streamlet src = new-streamlet (splitter);"
            "streamlet e = new-streamlet (encryptor);"
            "streamlet d = new-streamlet (decryptor_reg);"
            "streamlet e1, e2 = new-streamlet (sink);"
            "connect (src.po1, e.pi);"
            "connect (src.po2, d.pi);"
            "connect (e.po, e1.pi);"
            "connect (d.po, e2.pi);"
        )
        msgs = [v.message for v in analyze(table).of_kind(ViolationKind.DEPENDENCY)]
        assert any("shares a path" in m for m in msgs)


class TestPreorder:
    def test_wrong_order_flagged(self):
        # compression before encryption -- the thesis's canonical mistake
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet comp = new-streamlet (compressor);"
            "streamlet enc = new-streamlet (encryptor);"
            "streamlet d = new-streamlet (decryptor_reg);"
            "streamlet end = new-streamlet (sink);"
            "connect (src.po, comp.pi);"
            "connect (comp.po, enc.pi);"
            "connect (enc.po, d.pi);"
            "connect (d.po, end.pi);"
        )
        report = analyze(table)
        assert report.of_kind(ViolationKind.PREORDER)
        with pytest.raises(PreorderError):
            verify(table)

    def test_right_order_ok(self):
        table = table_of(
            "streamlet src = new-streamlet (source);"
            "streamlet enc = new-streamlet (encryptor);"
            "streamlet d = new-streamlet (decryptor_reg);"
            "streamlet comp = new-streamlet (compressor);"
            "streamlet end = new-streamlet (sink);"
            "connect (src.po, enc.pi);"
            "connect (enc.po, d.pi);"
            "connect (d.po, comp.pi);"
            "connect (comp.po, end.pi);"
        )
        assert not analyze(table).of_kind(ViolationKind.PREORDER)

    def test_unrelated_branches_ok(self):
        table = table_of(
            "streamlet src = new-streamlet (splitter);"
            "streamlet comp = new-streamlet (compressor);"
            "streamlet enc = new-streamlet (encryptor);"
            "streamlet d = new-streamlet (decryptor_reg);"
            "streamlet e1, e2 = new-streamlet (sink);"
            "connect (src.po1, comp.pi);"
            "connect (src.po2, enc.pi);"
            "connect (comp.po, e1.pi);"
            "connect (enc.po, d.pi);"
            "connect (d.po, e2.pi);"
        )
        assert not analyze(table).of_kind(ViolationKind.PREORDER)


class TestCompositeInterface:
    def test_matches_table_exposure(self):
        from repro.semantics.analyses import composite_interface

        table = table_of(GOOD)
        inner_in, inner_out = composite_interface(table)
        assert inner_in == table.exposed_in
        assert inner_out == table.exposed_out
        # GOOD is source -> stage -> sink: fully internal, nothing exposed
        assert inner_in == () and inner_out == ()

    def test_open_ends_exposed(self):
        from repro.semantics.analyses import composite_interface

        table = table_of(
            "streamlet a, b = new-streamlet (stage);"
            "connect (a.po, b.pi);"
        )
        inner_in, inner_out = composite_interface(table)
        assert [str(r) for r in inner_in] == ["a.pi"]
        assert [str(r) for r in inner_out] == ["b.po"]


class TestReport:
    def test_consistent_summary(self):
        report = analyze(table_of(GOOD))
        assert report.consistent
        assert "consistent" in report.summary()

    def test_violation_summary_lists_all(self):
        table = table_of(
            "streamlet s1, s2 = new-streamlet (stage);"
            "connect (s1.po, s2.pi);"
            "connect (s2.po, s1.pi);"
        )
        report = analyze(table)
        assert not report.consistent
        assert "feedback-loop" in report.summary()

    def test_verify_clean_is_silent(self):
        verify(table_of(GOOD))
