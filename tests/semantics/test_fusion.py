"""Fusion legality: which edges the optimizer may collapse, and which not."""

from repro.mcl import astnodes as ast
from repro.mcl.compiler import compile_script
from repro.semantics import fusion

DEFS = """
streamlet stage{
  port{ in pi : */*; out po : */*; }
}
streamlet source{
  port{ out po : */*; }
}
streamlet sink{
  port{ in pi : */*; }
}
streamlet splitter{
  port{ in pi : */*; out po1 : */*; out po2 : */*; }
}
streamlet merger{
  port{ in pi1 : */*; in pi2 : */*; out po : */*; }
}
streamlet oddstage{
  port{ in pi : */*; out po : */*; }
  attribute{ excludes = "evenstage"; }
}
streamlet evenstage{
  port{ in pi : */*; out po : */*; }
}
channel syncChan{
  port{ in cin : */*; out cout : */*; }
  attribute{ type = SYNC; buffer = 0; }
}
channel sChan{
  port{ in cin : */*; out cout : */*; }
  attribute{ category = S; }
}
channel asyncChan{
  port{ in cin : */*; out cout : */*; }
  attribute{ type = ASYNC; buffer = 64; }
}
"""


def table_of(body: str):
    return compile_script(DEFS + f"stream s{{ {body} }}").tables["s"]


def sync_chain(n: int, definition: str = "stage", channel: str = "syncChan") -> str:
    names = [f"n{i}" for i in range(n)]
    chans = [f"c{i}" for i in range(n - 1)]
    body = (
        f"streamlet {', '.join(names)} = new-streamlet ({definition});"
        f"channel {', '.join(chans)} = new-channel ({channel});"
    )
    for i, (a, b) in enumerate(zip(names, names[1:])):
        body += f"connect ({a}.po, {b}.pi, c{i});"
    return body


class TestIsSynchronous:
    def test_sync_and_s_category_qualify(self):
        table = table_of(
            sync_chain(2)
            + "streamlet m0, m1 = new-streamlet (stage);"
            "channel d0 = new-channel (sChan);"
            "connect (m0.po, m1.pi, d0);"
        )
        assert fusion.is_synchronous(table.channels["c0"].definition)
        assert fusion.is_synchronous(table.channels["d0"].definition)

    def test_async_does_not_qualify(self):
        table = table_of(
            "streamlet a, b = new-streamlet (stage);"
            "channel k = new-channel (asyncChan);"
            "connect (a.po, b.pi, k);"
        )
        assert not fusion.is_synchronous(table.channels["k"].definition)


class TestFusableChains:
    def test_sync_chain_fuses_end_to_end(self):
        table = table_of(sync_chain(4))
        assert fusion.fusable_chains(table) == [("n0", "n1", "n2", "n3")]

    def test_async_edges_break_the_chain(self):
        # n0 -sync- n1 -async- n2 -sync- n3: only the sync pairs fuse
        body = (
            "streamlet n0, n1, n2, n3 = new-streamlet (stage);"
            "channel c0, c2 = new-channel (syncChan);"
            "channel c1 = new-channel (asyncChan);"
            "connect (n0.po, n1.pi, c0);"
            "connect (n1.po, n2.pi, c1);"
            "connect (n2.po, n3.pi, c2);"
        )
        assert fusion.fusable_chains(table_of(body)) == [("n0", "n1"), ("n2", "n3")]

    def test_default_auto_channels_do_not_fuse(self):
        table = table_of(
            "streamlet a, b = new-streamlet (stage);"
            "connect (a.po, b.pi);"
        )
        assert fusion.fusable_chains(table) == []

    def test_fan_out_endpoint_is_not_fusable(self):
        body = (
            "streamlet sp = new-streamlet (splitter);"
            "streamlet a, b = new-streamlet (stage);"
            "channel c0, c1 = new-channel (syncChan);"
            "connect (sp.po1, a.pi, c0);"
            "connect (sp.po2, b.pi, c1);"
        )
        assert fusion.fusable_chains(table_of(body)) == []

    def test_fan_in_endpoint_is_not_fusable(self):
        body = (
            "streamlet a, b = new-streamlet (stage);"
            "streamlet m = new-streamlet (merger);"
            "channel c0, c1 = new-channel (syncChan);"
            "connect (a.po, m.pi1, c0);"
            "connect (b.po, m.pi2, c1);"
        )
        assert fusion.fusable_chains(table_of(body)) == []

    def test_feedback_loop_yields_no_chain(self):
        body = (
            "streamlet n0, n1, n2 = new-streamlet (stage);"
            "channel c0, c1, c2 = new-channel (syncChan);"
            "connect (n0.po, n1.pi, c0);"
            "connect (n1.po, n2.pi, c1);"
            "connect (n2.po, n0.pi, c2);"
        )
        assert fusion.fusable_chains(table_of(body)) == []

    def test_extracted_member_bars_its_edges(self):
        # bare `remove` is the extract primitive: detach but keep dormant
        body = sync_chain(3) + "when (LOW_BANDWIDTH) { remove (n1); }"
        assert fusion.fusable_chains(table_of(body)) == []

    def test_nested_when_extract_is_still_seen(self):
        # the parser forbids nested `when`, but handlers are plain AST and
        # other producers may nest them: the walk must still find the extract
        table = table_of(sync_chain(3))
        table.handlers["LOW_BANDWIDTH"] = (
            ast.When(
                event="LOW_MEMORY",
                actions=(ast.RemoveInstance("extract", "n1"),),
            ),
        )
        assert fusion.optional_instances(table.handlers) == frozenset({"n1"})
        assert fusion.fusable_chains(table) == []

    def test_mutual_exclusion_splits_the_chain(self):
        # hand-wire excludes onto a legal chain: the analyses would reject a
        # deployed stream carrying both, but legality must still refuse to
        # put the pair inside one fused dispatch
        table = table_of(sync_chain(4))
        odd = table.instances["n1"]
        table.instances["n1"] = ast.StreamletDef(
            name=odd.name, ports=odd.ports, kind=odd.kind, excludes=("stage",)
        )
        chains = fusion.fusable_chains(table)
        assert ("n0", "n1", "n2", "n3") not in chains
        assert all(len(c) >= 2 for c in chains)


class TestChainEdges:
    def test_disjoint_paths_in_order(self):
        successors = {"a": "b", "b": "c", "x": "y"}
        assert fusion.chain_edges(successors, ["a", "b", "c", "x", "y"]) == [
            ("a", "b", "c"), ("x", "y"),
        ]

    def test_cycle_is_refused(self):
        successors = {"a": "b", "b": "a"}
        assert fusion.chain_edges(successors, ["a", "b"]) == []

    def test_single_nodes_make_no_chain(self):
        assert fusion.chain_edges({}, ["a", "b"]) == []


class TestExclusionConflict:
    def test_bidirectional(self):
        defs = {
            "x": ast.StreamletDef(name="oddstage", ports=(), excludes=("evenstage",)),
            "y": ast.StreamletDef(name="evenstage", ports=()),
        }
        assert fusion.exclusion_conflict(defs, ["x"], "y")
        assert fusion.exclusion_conflict(defs, ["y"], "x")

    def test_no_conflict(self):
        defs = {
            "x": ast.StreamletDef(name="stage", ports=()),
            "y": ast.StreamletDef(name="stage", ports=()),
        }
        assert not fusion.exclusion_conflict(defs, ["x"], "y")
