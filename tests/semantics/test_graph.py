import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcl.compiler import compile_script
from repro.semantics.graph import StreamGraph

DEFS = """
streamlet stage{
  port{ in pi : */*; out po : */*; }
}
"""


def graph_of(body: str) -> StreamGraph:
    table = compile_script(DEFS + f"stream s{{ {body} }}").tables["s"]
    return StreamGraph.from_table(table)


PIPELINE = (
    "streamlet a, b, c = new-streamlet (stage);"
    "connect (a.po, b.pi);"
    "connect (b.po, c.pi);"
)

LOOP = (
    "streamlet a, b, c = new-streamlet (stage);"
    "connect (a.po, b.pi);"
    "connect (b.po, c.pi);"
    "connect (c.po, a.pi);"
)


class TestConstruction:
    def test_from_table(self):
        g = graph_of(PIPELINE)
        assert g.nodes == {"a", "b", "c"}
        assert g.edges() == {("a", "b"), ("b", "c")}

    def test_dormant_excluded(self):
        g = graph_of(PIPELINE + "streamlet spare = new-streamlet (stage);")
        assert "spare" not in g.nodes

    def test_definition_mapping(self):
        g = graph_of(PIPELINE)
        assert g.definition_of("a") == "stage"
        assert g.instances_of("stage") == {"a", "b", "c"}

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            StreamGraph(["a"], [("a", "ghost")])


class TestStructure:
    def test_sources_sinks(self):
        g = graph_of(PIPELINE)
        assert g.sources() == {"a"}
        assert g.sinks() == {"c"}

    def test_successors_predecessors(self):
        g = graph_of(PIPELINE)
        assert g.successors("a") == {"b"}
        assert g.predecessors("c") == {"b"}
        assert g.successors("c") == frozenset()


class TestReachability:
    def test_transitive(self):
        g = graph_of(PIPELINE)
        assert g.reachable_from("a") == {"b", "c"}
        assert g.connects("a", "c")
        assert not g.connects("c", "a")

    def test_common_path_symmetric(self):
        g = graph_of(PIPELINE)
        assert g.on_common_path("a", "c")
        assert g.on_common_path("c", "a")

    def test_no_common_path_on_branches(self):
        # two children of one parent are not on a common path
        g = StreamGraph(["p", "x", "y"], [("p", "x"), ("p", "y")])
        assert not g.on_common_path("x", "y")

    def test_cycle_includes_self(self):
        g = graph_of(LOOP)
        assert "a" in g.reachable_from("a")


class TestCycles:
    def test_pipeline_acyclic(self):
        g = graph_of(PIPELINE)
        assert g.is_acyclic()
        assert g.find_cycle() is None

    def test_loop_detected(self):
        g = graph_of(LOOP)
        cycle = g.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b", "c"}

    def test_self_loop(self):
        g = graph_of(
            "streamlet a = new-streamlet (stage); connect (a.po, a.pi);"
        )
        cycle = g.find_cycle()
        assert cycle == ["a", "a"]

    def test_topological_order(self):
        order = graph_of(PIPELINE).topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_order_cyclic_raises(self):
        with pytest.raises(ValueError):
            graph_of(LOOP).topological_order()


# -- property: cycle detection agrees with networkx --------------------------------


@st.composite
def random_digraph(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    nodes = [f"n{i}" for i in range(n)]
    possible = [(a, b) for a in nodes for b in nodes]
    edges = draw(st.lists(st.sampled_from(possible), max_size=25, unique=True))
    return nodes, edges


@settings(deadline=None, max_examples=200)
@given(random_digraph())
def test_cycle_detection_matches_networkx(data):
    nodes, edges = data
    ours = StreamGraph(nodes, edges)
    theirs = nx.DiGraph()
    theirs.add_nodes_from(nodes)
    theirs.add_edges_from(edges)
    assert ours.is_acyclic() == nx.is_directed_acyclic_graph(theirs)
    cycle = ours.find_cycle()
    if cycle is not None:
        # the reported cycle must actually exist edge by edge
        assert cycle[0] == cycle[-1]
        for src, dst in zip(cycle, cycle[1:]):
            assert (src, dst) in ours.edges()


@settings(deadline=None, max_examples=100)
@given(random_digraph())
def test_reachability_matches_networkx(data):
    nodes, edges = data
    ours = StreamGraph(nodes, edges)
    theirs = nx.DiGraph()
    theirs.add_nodes_from(nodes)
    theirs.add_edges_from(edges)
    for node in nodes:
        # strict transitive successors: union over direct successors of
        # ({s} ∪ descendants(s)) — includes `node` itself only on a cycle
        expected: set[str] = set()
        for succ in theirs.successors(node):
            expected.add(succ)
            expected |= set(nx.descendants(theirs, succ))
        assert set(ours.reachable_from(node)) == expected
