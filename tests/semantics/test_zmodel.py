"""Tests of the executable Z model (chapter 5 schemas)."""

import pytest

from repro.mcl.compiler import compile_script
from repro.semantics.graph import StreamGraph
from repro.semantics.zmodel import ZChannel, ZStreamlet, ZViolation, model_of

DEFS = """
streamlet stage{
  port{ in pi : text/*; out po : text/plain; }
}
streamlet src{
  port{ out po : text/plain; }
}
streamlet dst{
  port{ in pi : text/*; }
}
"""


def table_of(body):
    return compile_script(DEFS + f"stream s{{ {body} }}").tables["s"]


PIPELINE = (
    "streamlet a = new-streamlet (src);"
    "streamlet m = new-streamlet (stage);"
    "streamlet z = new-streamlet (dst);"
    "connect (a.po, m.pi);"
    "connect (m.po, z.pi);"
)

LOOP = (
    "streamlet x, y = new-streamlet (stage);"
    "connect (x.po, y.pi);"
    "connect (y.po, x.pi);"
)


class TestSchemaPredicates:
    def test_streamlet_valid(self):
        s = ZStreamlet("s", frozenset({"pi"}), frozenset({"po"}),
                       {"pi": "text/*", "po": "text/plain"})
        s.check()

    def test_inputs_outputs_disjoint(self):
        s = ZStreamlet("s", frozenset({"p"}), frozenset({"p"}), {"p": "text/*"})
        with pytest.raises(ZViolation, match="inputs"):
            s.check()

    def test_every_port_typed(self):
        s = ZStreamlet("s", frozenset({"pi"}), frozenset({"po"}), {"pi": "text/*"})
        with pytest.raises(ZViolation, match="port-type"):
            s.check()

    def test_channel_sink_ne_source(self):
        c = ZChannel("c", ("a", "po"), ("a", "po"), "*/*")
        with pytest.raises(ZViolation, match="sink = source"):
            c.check()

    def test_self_message_via_distinct_ports_legal(self):
        # a loop a.po -> a.pi is a *graph* cycle but schema-legal
        ZChannel("c", ("a", "po"), ("a", "pi"), "*/*").check()


class TestModelExtraction:
    def test_compiled_table_is_well_formed(self):
        model = model_of(table_of(PIPELINE))
        model.check()  # every schema predicate holds on compiler output

    def test_streamlets_and_channels_extracted(self):
        model = model_of(table_of(PIPELINE))
        assert set(model.streamlets) == {"a", "m", "z"}
        assert len(model.channels) == 2

    def test_dormant_excluded(self):
        model = model_of(table_of(PIPELINE + "streamlet d = new-streamlet (stage);"))
        assert "d" not in model.streamlets

    def test_connect_relation(self):
        model = model_of(table_of(PIPELINE))
        assert model.connect() == {("a", "m"), ("m", "z")}

    def test_connect_plus_closure(self):
        model = model_of(table_of(PIPELINE))
        assert model.connect_plus() == {("a", "m"), ("m", "z"), ("a", "z")}


class TestSection53Derivation:
    def test_acyclic_pipeline(self):
        assert model_of(table_of(PIPELINE)).is_acyclic()

    def test_loop_detected_via_identity_intersection(self):
        model = model_of(table_of(LOOP))
        # the thesis's derivation: (x,x),(y,y) ∈ connect+ ⇒ id ∩ connect+ ≠ ∅
        plus = model.connect_plus()
        assert ("x", "x") in plus and ("y", "y") in plus
        assert not model.is_acyclic()

    def test_agrees_with_stream_graph(self):
        for body in (PIPELINE, LOOP):
            table = table_of(body)
            assert model_of(table).is_acyclic() == StreamGraph.from_table(table).is_acyclic()


class TestZText:
    def test_renders_schemas(self):
        model = model_of(table_of(PIPELINE))
        text = model.to_z_text()
        assert text.startswith("Stream s ≙ [")
        assert "Streamlet ≙ [ id: a;" in text
        assert "Channel ≙ [" in text

    def test_wiring_violation_detected(self):
        model = model_of(table_of(PIPELINE))
        # corrupt the model: retype a sink so compatibility fails
        bad = ZChannel("cX", ("a", "po"), ("z", "nonexistent"), "*/*")
        model.channels["cX"] = bad
        with pytest.raises(ZViolation, match="not an input"):
            model.check()
