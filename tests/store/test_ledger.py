"""Ledger fold semantics: the cross-crash conservation arithmetic."""

from repro.store import Ledger, MemoryStore, NULL_LEDGER, fold


def make_ledger():
    return Ledger(MemoryStore())


class TestCountersFold:
    def test_deltas_accumulate_into_totals(self):
        ledger = make_ledger()
        ledger.deployed("s", mcl="main stream s{}", scheduler="inline")
        ledger.counters("s", admitted=5, delivered=2)
        ledger.counters("s", admitted=1, delivered=3, absorbed=1)
        f = ledger.fold().session("s")
        assert (f.admitted, f.delivered, f.absorbed) == (6, 5, 1)
        assert f.running_in_flight == 0
        assert f.balances(resident=0)

    def test_running_in_flight_is_admissions_minus_fates(self):
        ledger = make_ledger()
        ledger.counters("s", admitted=10, delivered=4, dead_letters=1, dropped=2)
        f = ledger.fold().session("s")
        assert f.running_in_flight == 3
        assert f.balances(resident=3)
        assert not f.balances(resident=0)

    def test_all_zero_delta_writes_nothing(self):
        ledger = make_ledger()
        ledger.counters("s")
        assert ledger.store.appends == 0

    def test_sessions_fold_independently(self):
        ledger = make_ledger()
        ledger.counters("a", admitted=2, delivered=2)
        ledger.counters("b", admitted=7)
        out = ledger.fold()
        assert out.session("a").running_in_flight == 0
        assert out.session("b").running_in_flight == 7


class TestRecoveredFold:
    def test_recovered_freezes_running_in_flight(self):
        ledger = make_ledger()
        ledger.counters("s", admitted=8, delivered=5)
        ledger.recovered("s", in_flight=3, parked=0, retries=0)
        f = ledger.fold().session("s")
        assert f.recovered_in_flight == 3
        assert f.running_in_flight == 0
        assert f.recoveries == 1
        assert f.balances(resident=0)

    def test_generations_accumulate(self):
        ledger = make_ledger()
        ledger.counters("s", admitted=4, delivered=2)
        ledger.recovered("s", in_flight=2, parked=0, retries=0)
        ledger.counters("s", admitted=3, delivered=2)
        ledger.recovered("s", in_flight=1, parked=0, retries=0)
        f = ledger.fold().session("s")
        assert f.recovered_in_flight == 3
        assert f.recoveries == 2
        assert f.balances(resident=0)

    def test_recovered_clears_pending_retries(self):
        ledger = make_ledger()
        ledger.retry_scheduled("s", "m1", instance="b", port="pi", attempt=1)
        ledger.recovered("s", in_flight=0, parked=0, retries=1)
        assert ledger.fold().session("s").pending_retries == {}


class TestFaultPathFold:
    def test_dead_letter_round_trips_its_frame(self):
        ledger = make_ledger()
        ledger.dead_letter("s", "m1", stream="st", reason="exhausted", frame=b"FRAME")
        parked = ledger.fold().session("s").parked
        assert parked["m1"].frame == b"FRAME"
        assert parked["m1"].reason == "exhausted"

    def test_requeue_and_eviction_pop_the_parked_set(self):
        ledger = make_ledger()
        ledger.dead_letter("s", "m1", frame=b"a")
        ledger.dead_letter("s", "m2", frame=b"b")
        ledger.requeue("s", "m1")
        ledger.dead_letter_evicted("s", "m2")
        assert ledger.fold().session("s").parked == {}

    def test_retry_schedule_settles(self):
        ledger = make_ledger()
        ledger.retry_scheduled("s", "m1", instance="b", port="pi", attempt=1, frame=b"x")
        ledger.retry_scheduled("s", "m2", instance="b", port="pi", attempt=2)
        ledger.retry_settled("s", "m1")
        pending = ledger.fold().session("s").pending_retries
        assert list(pending) == ["m2"]
        assert pending["m2"].attempt == 2


class TestLifecycleFold:
    def test_undeploy_retires_the_session(self):
        ledger = make_ledger()
        ledger.deployed("s", mcl="main stream s{}", scheduler="inline")
        ledger.undeployed("s")
        out = ledger.fold()
        assert out.recoverable() == []
        assert out.session("s").undeployed

    def test_redeploy_after_undeploy_is_recoverable_again(self):
        ledger = make_ledger()
        ledger.deployed("s", mcl="v1", scheduler="inline")
        ledger.undeployed("s")
        ledger.deployed("s", mcl="v2", scheduler="threaded")
        [f] = ledger.fold().recoverable()
        assert f.composition == ("v2", "threaded")

    def test_lkg_adopt_retire_take(self):
        ledger = make_ledger()
        ledger.lkg("s", "adopted", epoch=3, mcl="main stream s{}")
        f = ledger.fold().session("s")
        assert (f.lkg_epoch, f.lkg_mcl) == (3, "main stream s{}")
        ledger.lkg("s", "taken", epoch=3)  # rollback consumed it: stays adopted
        assert ledger.fold().session("s").lkg_epoch == 3
        ledger.lkg("s", "retired", epoch=3)
        assert ledger.fold().session("s").lkg_epoch is None


class TestRobustness:
    def test_unknown_events_and_bad_records_are_skipped(self):
        out = fold([
            {"ev": "future_event", "session": "s"},
            {"ev": "counters", "admitted": 5},  # no session key
            {"not": "a ledger record"},
            {"ev": "counters", "session": "s", "admitted": 1, "delivered": 1},
        ])
        assert out.records == 4
        assert out.session("s").admitted == 1

    def test_null_ledger_is_inert(self):
        NULL_LEDGER.deployed("s", mcl="x", scheduler="inline")
        NULL_LEDGER.counters("s", admitted=5)
        NULL_LEDGER.flush()
        assert not NULL_LEDGER.enabled
        assert NULL_LEDGER.fold().sessions == {}
