"""RecoveryManager: restart restoration, re-parking, re-injection, reconcile."""

import socket
import time

from repro.gateway import GatewayConfig, GatewayServer
from repro.mime.message import MimeMessage
from repro.mime.wire import FrameAssembler, serialize_message
from repro.store import Ledger, open_store

MCL = """main stream chain{
  streamlet r0, r1 = new-streamlet (redirector);
  connect (r0.po, r1.pi);
}"""


def durable_config(tmp_path, **overrides):
    defaults = dict(
        store_backend="file",
        store_path=str(tmp_path / "ledger.wal"),
        supervise=True,
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def echo_once(address, key, body=b"payload"):
    message = MimeMessage("text/plain", body)
    message.headers.session = key
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(serialize_message(message))
        assembler = FrameAssembler()
        frames = []
        while not frames:
            chunk = sock.recv(65536)
            assert chunk, "gateway closed the connection"
            frames = assembler.feed(chunk)
    return frames[0]


def await_balanced(handle, timeout=5.0):
    deadline = time.monotonic() + timeout
    reply = {}
    while time.monotonic() < deadline:
        reply = handle.control({"op": "recovery", "reconcile": True})
        if (reply.get("reconcile") or {}).get("balanced"):
            return reply
        time.sleep(0.02)
    return reply


class TestRestartRestoration:
    def test_restart_restores_the_session_from_the_ledger(self, tmp_path):
        config = durable_config(tmp_path)
        with GatewayServer(config=config).run_in_thread() as handle:
            deployed = handle.control({"op": "deploy", "mcl": MCL, "session": "s-1"})
            assert deployed["ok"]
            frame = echo_once(handle.data_address, "s-1")
            assert frame.body == b"payload"
        # clean stop does NOT undeploy: the session must come back
        restarted = GatewayServer(config=durable_config(tmp_path))
        with restarted.run_in_thread() as handle:
            report = restarted.recovery.last_report
            assert report is not None and report.restored == 1
            [outcome] = report.sessions
            assert outcome.session == "s-1" and outcome.restored
            # and it still moves traffic
            frame = echo_once(handle.data_address, "s-1", b"after restart")
            assert frame.body == b"after restart"
            reply = await_balanced(handle)
            reconcile = reply["reconcile"]
            assert reconcile["balanced"] and reconcile["missing"] == 0
            [row] = reconcile["sessions"]
            assert row["delivered"] >= 2  # both generations' deliveries folded

    def test_operator_undeploy_retires_the_session(self, tmp_path):
        with GatewayServer(config=durable_config(tmp_path)).run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "s-1"})
            gone = handle.control({"op": "undeploy", "session": "s-1"})
            assert gone["ok"]
        restarted = GatewayServer(config=durable_config(tmp_path))
        with restarted.run_in_thread():
            report = restarted.recovery.last_report
            assert report is not None and report.restored == 0
            assert "s-1" not in restarted.sessions

    def test_recover_is_idempotent_for_live_sessions(self, tmp_path):
        restarted = GatewayServer(config=durable_config(tmp_path))
        with GatewayServer(config=durable_config(tmp_path)).run_in_thread() as handle:
            handle.control({"op": "deploy", "mcl": MCL, "session": "s-1"})
        with restarted.run_in_thread():
            second = restarted.recovery.recover()
            [outcome] = second.sessions
            assert not outcome.restored and outcome.reason == "already deployed"


class TestFaultStateRestoration:
    def _seed_ledger(self, tmp_path, records):
        ledger = Ledger(open_store("file", str(tmp_path / "ledger.wal")))
        ledger.deployed("s-1", mcl=MCL, scheduler="threaded")
        records(ledger)
        ledger.close()

    def test_parked_dead_letters_are_reparked(self, tmp_path):
        frame = serialize_message(MimeMessage("text/plain", b"parked"))
        self._seed_ledger(
            tmp_path,
            lambda ledger: (
                ledger.counters("s-1", admitted=1, dead_letters=1),
                ledger.dead_letter(
                    "s-1", "msg-1", stream="chain", reason="exhausted", frame=frame
                ),
            ),
        )
        gateway = GatewayServer(config=durable_config(tmp_path))
        with gateway.run_in_thread() as handle:
            [outcome] = gateway.recovery.last_report.sessions
            assert outcome.restored and outcome.reparked == 1
            supervisor = gateway.sessions["s-1"].supervisor
            assert "msg-1" in supervisor.dead_letters
            [entry] = list(supervisor.dead_letters)
            assert entry.reason.startswith("recovered")
            assert entry.message is not None and entry.message.body == b"parked"
            reply = await_balanced(handle)
            assert reply["reconcile"]["balanced"]

    def test_pending_retries_are_reinjected_as_fresh_admissions(self, tmp_path):
        frame = serialize_message(MimeMessage("text/plain", b"retry me"))
        self._seed_ledger(
            tmp_path,
            lambda ledger: (
                ledger.counters("s-1", admitted=1),  # in flight at the kill
                ledger.retry_scheduled(
                    "s-1", "msg-1", instance="r1", port="pi", attempt=1, frame=frame
                ),
            ),
        )
        gateway = GatewayServer(config=durable_config(tmp_path))
        with gateway.run_in_thread() as handle:
            [outcome] = gateway.recovery.last_report.sessions
            assert outcome.restored
            assert outcome.in_flight == 1  # the dead generation's tally, frozen
            assert outcome.reinjected == 1 and outcome.reinject_failures == 0
            reply = await_balanced(handle)
            reconcile = reply["reconcile"]
            assert reconcile["balanced"] and reconcile["missing"] == 0
            [row] = reconcile["sessions"]
            assert row["recovered_in_flight"] == 1
            assert row["admitted"] == 2  # original + the re-injection


class TestLedgerlessGateway:
    def test_gateway_without_a_backend_skips_recovery(self):
        gateway = GatewayServer()
        with gateway.run_in_thread() as handle:
            assert not gateway.ledger.enabled
            reply = handle.control({"op": "recovery"})
            assert reply["ok"] and reply["enabled"] is False
