"""The StateStore contract across every backend, plus WAL edge cases."""

import pytest

from repro.errors import StoreError
from repro.store import FileWALStore, MemoryStore, SqliteWALStore, open_store
from repro.telemetry import MetricsRegistry, Telemetry

RECORDS = [
    {"ev": "deployed", "session": "s", "mcl": "main stream s{}", "scheduler": "inline"},
    {"ev": "counters", "session": "s", "admitted": 3, "delivered": 2},
    {"ev": "undeployed", "session": "s"},
]


def make_store(backend, tmp_path, **kwargs):
    path = str(tmp_path / f"ledger.{backend}")
    if backend == "memory":
        return open_store("memory", **kwargs)
    return open_store(backend, path, **kwargs)


@pytest.mark.parametrize("backend", ["memory", "file", "sqlite"])
class TestContract:
    def test_append_assigns_increasing_sequence(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        seqs = [store.append(r) for r in RECORDS]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        store.close()

    def test_replay_preserves_order_and_content(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        for r in RECORDS:
            store.append(r)
        store.flush()
        assert list(store.replay()) == RECORDS
        assert store.replayed == len(RECORDS)
        store.close()

    def test_truncate_discards_everything(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        for r in RECORDS:
            store.append(r)
        store.truncate()
        store.flush()
        assert list(store.replay()) == []
        store.close()

    def test_append_after_close_raises(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.close()
        store.close()  # idempotent
        assert store.closed
        with pytest.raises(StoreError):
            store.append({"ev": "x", "session": "s"})

    def test_counters_track_operations(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.append(RECORDS[0])
        store.flush()
        assert store.appends == 1
        assert store.flushes == 1
        store.close()


@pytest.mark.parametrize("backend", ["file", "sqlite"])
def test_durable_backends_survive_reopen(backend, tmp_path):
    path = str(tmp_path / "ledger.wal")
    store = open_store(backend, path)
    for r in RECORDS:
        store.append(r)
    store.close()
    reopened = open_store(backend, path)
    assert list(reopened.replay()) == RECORDS
    # appends continue after the recorded tail, never overwriting it
    reopened.append({"ev": "requeue", "session": "s", "msg_id": "m1"})
    reopened.flush()
    assert len(list(reopened.replay())) == len(RECORDS) + 1
    reopened.close()


class TestTornTail:
    def test_replay_stops_at_partial_final_line(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        store = FileWALStore(path)
        for r in RECORDS:
            store.append(r)
        store.close()
        with open(path, "ab") as fh:
            fh.write(b'0badc0de {"ev": "counters", "sess')  # kill -9 mid-write
        reopened = FileWALStore(path)
        assert list(reopened.replay()) == RECORDS
        assert reopened.torn >= 1
        reopened.close()

    def test_append_after_torn_tail_is_safe(self, tmp_path):
        # the torn bytes must be truncated on open, or the next append
        # concatenates onto the partial line and corrupts itself
        path = str(tmp_path / "torn.wal")
        store = FileWALStore(path)
        store.append(RECORDS[0])
        store.close()
        with open(path, "ab") as fh:
            fh.write(b"deadbeef {\"ev\": ")
        reopened = FileWALStore(path)
        reopened.append(RECORDS[1])
        reopened.close()
        final = FileWALStore(path)
        assert list(final.replay()) == RECORDS[:2]
        assert final.torn == 0
        final.close()

    def test_corrupt_middle_line_cuts_the_suffix(self, tmp_path):
        path = str(tmp_path / "flip.wal")
        store = FileWALStore(path)
        for r in RECORDS:
            store.append(r)
        store.close()
        with open(path, "rb") as fh:
            lines = fh.readlines()
        lines[1] = lines[1].replace(b'"admitted"', b'"admXtted"')  # CRC now wrong
        with open(path, "wb") as fh:
            fh.writelines(lines)
        reopened = FileWALStore(path)
        assert list(reopened.replay()) == RECORDS[:1]
        reopened.close()


class TestFsyncPolicies:
    def test_always_syncs_per_append(self, tmp_path):
        store = FileWALStore(str(tmp_path / "a.wal"), fsync="always")
        store.append(RECORDS[0])
        store.append(RECORDS[1])
        assert store.fsyncs == 2
        store.close()

    def test_batch_syncs_on_flush_only(self, tmp_path):
        store = FileWALStore(str(tmp_path / "b.wal"), fsync="batch")
        store.append(RECORDS[0])
        assert store.fsyncs == 0
        store.flush()
        assert store.fsyncs == 1
        store.close()

    def test_never_skips_the_sync(self, tmp_path):
        store = FileWALStore(str(tmp_path / "n.wal"), fsync="never")
        store.append(RECORDS[0])
        store.flush()
        store.close()
        assert store.fsyncs == 0

    def test_sqlite_maps_policy_to_synchronous_pragma(self, tmp_path):
        for policy, expected in (("always", 2), ("batch", 1), ("never", 0)):
            store = SqliteWALStore(str(tmp_path / f"{policy}.db"), fsync=policy)
            [(level,)] = store._conn.execute("PRAGMA synchronous").fetchall()
            assert level == expected
            store.close()


class TestOpenStore:
    def test_backend_classes_and_durability_flags(self, tmp_path):
        assert isinstance(open_store("memory"), MemoryStore)
        file_store = open_store("file", str(tmp_path / "f.wal"))
        sqlite_store = open_store("sqlite", str(tmp_path / "s.db"))
        assert isinstance(file_store, FileWALStore) and file_store.durable
        assert isinstance(sqlite_store, SqliteWALStore) and sqlite_store.durable
        assert not MemoryStore().durable
        file_store.close()
        sqlite_store.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(StoreError):
            open_store("etcd")

    def test_durable_backends_require_a_path(self):
        with pytest.raises(StoreError):
            open_store("file")
        with pytest.raises(StoreError):
            open_store("sqlite")

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            open_store("file", str(tmp_path / "f.wal"), fsync="sometimes")

    def test_telemetry_instrumentation_counts_operations(self, tmp_path):
        tm = Telemetry(registry=MetricsRegistry())  # isolated from the global registry
        store = open_store("file", str(tmp_path / "t.wal"), fsync="always", telemetry=tm)
        store.append(RECORDS[0])
        store.flush()
        list(store.replay())
        assert tm.store_append_counter("file").value == 1
        assert tm.store_fsync_counter("file").value >= 1
        assert tm.store_replay_counter("file").value == 1
        store.close()
