"""Tests for the aggregation and customization service entities (§1.2.1)."""

import pytest

from repro.errors import RuntimeFault
from repro.mime.mediatype import TEXT_PLAIN
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import StreamletContext
from repro.streamlets.aggregate import AGGREGATE_COUNT, AGGREGATOR_DEF, Aggregator
from repro.streamlets.compress import CONTENT_ENCODING, TEXT_COMPRESS_DEF, TextCompress
from repro.streamlets.customize import (
    CUSTOMIZER_DEF,
    FACTOR_HEADER,
    NO_COMPRESS_HEADER,
    QUALITY_HEADER,
    USER_HEADER,
    Customizer,
    PreferencesDB,
    UserPreferences,
)
from repro.streamlets.image_ops import GIF2JPEG_DEF, Gif2Jpeg
from repro.workloads.content import synthetic_image_message, synthetic_text_message


def ctx(**params):
    return StreamletContext("inst", params=params)


class TestAggregator:
    def test_window_collation(self):
        agg = Aggregator("a", AGGREGATOR_DEF)
        outs = []
        for i in range(7):
            outs.extend(agg.process("pi1", MimeMessage(TEXT_PLAIN, f"m{i}".encode()),
                                    ctx(window=3)))
        assert len(outs) == 2  # two full windows; one message pending
        [(_, first), (_, second)] = outs
        assert first.headers.get(AGGREGATE_COUNT) == "3"
        assert [p.body for p in first.parts] == [b"m0", b"m1", b"m2"]
        assert agg.pending == 1

    def test_multi_port_sources(self):
        agg = Aggregator("a", AGGREGATOR_DEF)
        agg.process("pi1", MimeMessage(TEXT_PLAIN, b"src1"), ctx(window=2))
        [(_, digest)] = agg.process("pi2", MimeMessage(TEXT_PLAIN, b"src2"), ctx(window=2))
        assert [p.body for p in digest.parts] == [b"src1", b"src2"]

    def test_window_one_passthrough(self):
        agg = Aggregator("a", AGGREGATOR_DEF)
        msg = MimeMessage(TEXT_PLAIN, b"solo")
        assert agg.process("pi1", msg, ctx(window=1)) == [("po", msg)]

    def test_flush_partial(self):
        agg = Aggregator("a", AGGREGATOR_DEF)
        agg.process("pi1", MimeMessage(TEXT_PLAIN, b"x"), ctx(window=5))
        [(_, digest)] = agg.flush()
        assert len(digest.parts) == 1
        assert agg.flush() == []

    def test_reset(self):
        agg = Aggregator("a", AGGREGATOR_DEF)
        agg.process("pi1", MimeMessage(TEXT_PLAIN, b"x"), ctx(window=5))
        agg.reset()
        assert agg.pending == 0


class TestPreferencesDB:
    def test_default_for_unknown_user(self):
        db = PreferencesDB()
        prefs = db.get("stranger")
        assert prefs.compress_text is True
        assert prefs.quality is None

    def test_put_get(self):
        db = PreferencesDB()
        db.put("alice", UserPreferences(quality=30))
        assert db.get("alice").quality == 30
        assert db.known_users() == {"alice"}

    def test_custom_default(self):
        db = PreferencesDB(default=UserPreferences(quality=80))
        assert db.get(None).quality == 80

    def test_forget(self):
        db = PreferencesDB()
        db.put("bob", UserPreferences())
        assert db.forget("bob")
        assert not db.forget("bob")

    def test_validation(self):
        with pytest.raises(RuntimeFault):
            PreferencesDB().put("x", UserPreferences(quality=0))
        with pytest.raises(RuntimeFault):
            PreferencesDB().put("x", UserPreferences(downsample_factor=0))


class TestCustomizer:
    def make(self, **prefs_kwargs):
        db = PreferencesDB()
        db.put("alice", UserPreferences(**prefs_kwargs))
        return Customizer("c", CUSTOMIZER_DEF), db

    def test_annotates_known_user(self):
        customizer, db = self.make(quality=25, downsample_factor=4, compress_text=False)
        msg = MimeMessage(TEXT_PLAIN, b"x")
        msg.headers.set(USER_HEADER, "alice")
        [(_, out)] = customizer.process("pi", msg, ctx(prefs=db))
        assert out.headers.get(QUALITY_HEADER) == "25"
        assert out.headers.get(FACTOR_HEADER) == "4"
        assert out.headers.get(NO_COMPRESS_HEADER) == "1"

    def test_unknown_user_gets_default(self):
        customizer, db = self.make(quality=25)
        msg = MimeMessage(TEXT_PLAIN, b"x")
        msg.headers.set(USER_HEADER, "nobody")
        [(_, out)] = customizer.process("pi", msg, ctx(prefs=db))
        assert QUALITY_HEADER not in out.headers

    def test_no_db_is_noop(self):
        customizer = Customizer("c", CUSTOMIZER_DEF)
        msg = MimeMessage(TEXT_PLAIN, b"x")
        [(_, out)] = customizer.process("pi", msg, ctx())
        assert QUALITY_HEADER not in out.headers

    def test_extras_applied(self):
        customizer, db = self.make(extras={"X-Theme": "dark"})
        msg = MimeMessage(TEXT_PLAIN, b"x")
        msg.headers.set(USER_HEADER, "alice")
        [(_, out)] = customizer.process("pi", msg, ctx(prefs=db))
        assert out.headers.get("X-Theme") == "dark"


class TestHeaderOverrides:
    def test_quality_header_overrides_param(self):
        streamlet = Gif2Jpeg("j", GIF2JPEG_DEF)
        low = synthetic_image_message(96, 64, seed=1)
        low.headers.set(QUALITY_HEADER, "10")
        hi = synthetic_image_message(96, 64, seed=1)
        hi.headers.set(QUALITY_HEADER, "90")
        [(_, low_out)] = streamlet.process("pi", low, ctx(quality=60))
        [(_, hi_out)] = streamlet.process("pi", hi, ctx(quality=60))
        assert low_out.body_size() < hi_out.body_size()

    def test_no_compress_header_respected(self):
        compressor = TextCompress("c", TEXT_COMPRESS_DEF)
        msg = synthetic_text_message(2048, seed=2)
        original = msg.body
        msg.headers.set(NO_COMPRESS_HEADER, "1")
        [(_, out)] = compressor.process("pi", msg, ctx())
        assert out.body == original
        assert CONTENT_ENCODING not in out.headers


class TestEndToEndCustomization:
    def test_two_users_two_qualities(self):
        """TranSend-style: per-user profiles drive per-message distillation."""
        from repro.apps import build_server
        from repro.runtime.scheduler import InlineScheduler

        # the generic customizer is typed */* -> */*, which MCL rightly
        # refuses to feed into a typed image/* input; advertise an
        # image-typed definition bound to the same implementation
        from repro.mcl import astnodes as ast
        from repro.mime.mediatype import IMAGE

        source = """
main stream personalised{
  streamlet cz = new-streamlet (img_customizer);
  streamlet g2j = new-streamlet (gif2jpeg);
  connect (cz.po, g2j.pi);
}
"""
        server = build_server()
        server.directory.advertise(
            ast.StreamletDef(
                name="img_customizer",
                ports=(
                    ast.PortDecl(ast.PortDirection.IN, "pi", IMAGE),
                    ast.PortDecl(ast.PortDirection.OUT, "po", IMAGE),
                ),
                kind=ast.StreamletKind.STATEFUL,
            ),
            Customizer,
        )
        stream = server.deploy_script(source)
        db = PreferencesDB()
        db.put("pda-user", UserPreferences(quality=10))
        db.put("laptop-user", UserPreferences(quality=90))
        stream.set_param("cz", "prefs", db)
        scheduler = InlineScheduler(stream)

        sizes = {}
        for user in ("pda-user", "laptop-user"):
            msg = synthetic_image_message(128, 96, seed=5)
            msg.headers.set(USER_HEADER, user)
            stream.post(msg)
            scheduler.pump()
            [out] = stream.collect()
            sizes[user] = out.body_size()
        assert sizes["pda-user"] < sizes["laptop-user"] / 2
