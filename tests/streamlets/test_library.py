"""Unit tests for each built-in service streamlet, in isolation."""

import numpy as np
import pytest

from repro.codecs.imagefmt import ImageRaster, decode_gif, decode_jpeg, encode_gif
from repro.codecs.textcodec import TextCodec
from repro.errors import CodecError, RuntimeFault
from repro.mime.mediatype import IMAGE_GIF, IMAGE_JPEG, TEXT_PLAIN
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import StreamletContext
from repro.streamlets import (
    CACHE_DEF,
    COMMUNICATOR_DEF,
    ENCRYPTOR_DEF,
    GIF2JPEG_DEF,
    IMG_DOWN_SAMPLE_DEF,
    MAP_TO_16_GRAYS_DEF,
    MERGE_DEF,
    POSTSCRIPT2TEXT_DEF,
    POWER_SAVING_DEF,
    SWITCH_DEF,
    TEXT_COMPRESS_DEF,
    CacheStreamlet,
    Communicator,
    ContentSwitch,
    Encryptor,
    Gif2Jpeg,
    ImageDownSample,
    MapTo16Grays,
    Merge,
    Postscript2Text,
    PowerSaving,
    TextCompress,
)
from repro.streamlets.cache import CACHE_HEADER, RESOURCE_HEADER, ClientCacheStore
from repro.streamlets.compress import CONTENT_ENCODING, decompress_message
from repro.streamlets.crypto import NONCE_HEADER, decrypt_message
from repro.streamlets.power import unbundle_message
from repro.streamlets.switch import COUNT_HEADER, GROUP_HEADER
from repro.workloads.content import (
    synthetic_image_message,
    synthetic_ps_message,
    synthetic_text_message,
    web_page_message,
)


def ctx(**params):
    return StreamletContext("test-inst", params=params)


class TestSwitch:
    def test_splits_multipart_by_type(self):
        switch = ContentSwitch("s", SWITCH_DEF)
        page = web_page_message(n_images=2, text_bytes=512, seed=1)
        emissions = switch.process("pi", page, ctx())
        ports = [port for port, _ in emissions]
        assert ports.count("po_img") == 2
        assert ports.count("po_txt") == 1

    def test_parts_tagged_for_merge(self):
        switch = ContentSwitch("s", SWITCH_DEF)
        page = web_page_message(n_images=1, text_bytes=256, seed=2)
        emissions = switch.process("pi", page, ctx())
        groups = {m.headers.get(GROUP_HEADER) for _, m in emissions}
        assert len(groups) == 1
        assert all(m.headers.get(COUNT_HEADER) == "2" for _, m in emissions)

    def test_single_message_routed_whole(self):
        switch = ContentSwitch("s", SWITCH_DEF)
        msg = synthetic_text_message(128, seed=3)
        [(port, out)] = switch.process("pi", msg, ctx())
        assert port == "po_txt"
        assert out is msg

    def test_postscript_routed(self):
        switch = ContentSwitch("s", SWITCH_DEF)
        [(port, _)] = switch.process("pi", synthetic_ps_message(2, seed=1), ctx())
        assert port == "po_ps"

    def test_unroutable_dropped(self):
        switch = ContentSwitch("s", SWITCH_DEF)
        msg = MimeMessage("video/mpeg", b"xxxx")
        assert switch.process("pi", msg, ctx()) == []


class TestMerge:
    def test_rejoins_group(self):
        switch = ContentSwitch("s", SWITCH_DEF)
        merge = Merge("m", MERGE_DEF)
        page = web_page_message(n_images=1, text_bytes=128, seed=4)
        n_parts = len(page.parts)
        emissions = switch.process("pi", page, ctx())
        outs = []
        for index, (_, part) in enumerate(emissions):
            outs.extend(merge.process(f"pi{(index % 2) + 1}", part, ctx()))
        assert len(outs) == 1
        [(port, merged)] = outs
        assert port == "po"
        assert merged.is_multipart
        assert len(merged.parts) == n_parts
        assert merge.pending_groups == 0

    def test_untagged_passthrough(self):
        merge = Merge("m", MERGE_DEF)
        msg = synthetic_text_message(64, seed=5)
        assert merge.process("pi1", msg, ctx()) == [("po", msg)]

    def test_incomplete_group_held(self):
        merge = Merge("m", MERGE_DEF)
        msg = synthetic_text_message(64, seed=6)
        msg.headers.set(GROUP_HEADER, "g1")
        msg.headers.set(COUNT_HEADER, "2")
        assert merge.process("pi1", msg, ctx()) == []
        assert merge.pending_groups == 1

    def test_missing_count_rejected(self):
        merge = Merge("m", MERGE_DEF)
        msg = synthetic_text_message(64, seed=7)
        msg.headers.set(GROUP_HEADER, "g1")
        with pytest.raises(RuntimeFault):
            merge.process("pi1", msg, ctx())

    def test_reset_clears_state(self):
        merge = Merge("m", MERGE_DEF)
        msg = synthetic_text_message(64, seed=8)
        msg.headers.set(GROUP_HEADER, "g1")
        msg.headers.set(COUNT_HEADER, "2")
        merge.process("pi1", msg, ctx())
        merge.reset()
        assert merge.pending_groups == 0


class TestImageOps:
    def test_down_sample_shrinks(self):
        streamlet = ImageDownSample("d", IMG_DOWN_SAMPLE_DEF)
        msg = synthetic_image_message(128, 96, seed=9)
        before = msg.body_size()
        [(_, out)] = streamlet.process("pi", msg, ctx(factor=2))
        decoded = decode_gif(out.body)
        assert (decoded.width, decoded.height) == (64, 48)
        assert out.body_size() < before

    def test_down_sample_default_factor(self):
        streamlet = ImageDownSample("d", IMG_DOWN_SAMPLE_DEF)
        msg = synthetic_image_message(64, 64, seed=10)
        [(_, out)] = streamlet.process("pi", msg, ctx())
        assert decode_gif(out.body).width == 32

    def test_map_to_16_grays(self):
        streamlet = MapTo16Grays("g", MAP_TO_16_GRAYS_DEF)
        msg = synthetic_image_message(64, 48, seed=11)
        [(_, out)] = streamlet.process("pi", msg, ctx())
        decoded = decode_gif(out.body)
        # grayscale after 3-3-2 palette roundtrip: channels nearly equal
        px = decoded.pixels.astype(int)
        assert np.abs(px[:, :, 0] - px[:, :, 1]).max() <= 36

    def test_gif2jpeg_converts_and_shrinks(self):
        streamlet = Gif2Jpeg("j", GIF2JPEG_DEF)
        msg = synthetic_image_message(128, 96, seed=12)
        before = msg.body_size()
        [(_, out)] = streamlet.process("pi", msg, ctx(quality=50))
        assert out.content_type == IMAGE_JPEG
        assert out.body_size() < before
        decoded = decode_jpeg(out.body)
        assert (decoded.width, decoded.height) == (128, 96)

    def test_raster_payload_supported(self):
        streamlet = ImageDownSample("d", IMG_DOWN_SAMPLE_DEF)
        raster = ImageRaster.synthetic(32, 32, seed=13)
        msg = MimeMessage(IMAGE_GIF, raster)
        [(_, out)] = streamlet.process("pi", msg, ctx(factor=2))
        assert isinstance(out.body, ImageRaster)
        assert out.body.width == 16

    def test_undecodable_payload_rejected(self):
        streamlet = Gif2Jpeg("j", GIF2JPEG_DEF)
        msg = MimeMessage(IMAGE_GIF, b"not an image")
        with pytest.raises(CodecError):
            streamlet.process("pi", msg, ctx())


class TestPostscript2Text:
    def test_extracts_text(self):
        streamlet = Postscript2Text("p", POSTSCRIPT2TEXT_DEF)
        msg = synthetic_ps_message(3, seed=14)
        before = msg.body_size()
        [(_, out)] = streamlet.process("pi", msg, ctx())
        assert out.content_type.essence == "text/richtext"
        assert out.body_size() < before
        assert isinstance(out.body, bytes)

    def test_accepts_wire_form(self):
        streamlet = Postscript2Text("p", POSTSCRIPT2TEXT_DEF)
        msg = MimeMessage("application/postscript", b"show hello\npage")
        [(_, out)] = streamlet.process("pi", msg, ctx())
        assert out.body == b"hello"

    def test_bad_payload(self):
        streamlet = Postscript2Text("p", POSTSCRIPT2TEXT_DEF)
        msg = MimeMessage("application/postscript", np.zeros(4, dtype=np.uint8))
        with pytest.raises(CodecError):
            streamlet.process("pi", msg, ctx())


class TestTextCompress:
    def test_roundtrip_via_peer(self):
        streamlet = TextCompress("c", TEXT_COMPRESS_DEF)
        original = synthetic_text_message(4096, seed=15)
        payload = original.body
        [(_, out)] = streamlet.process("pi", original, ctx())
        assert out.headers.get(CONTENT_ENCODING) == "mobigate-lzh"
        assert out.body_size() < len(payload)
        decompress_message(out)
        assert out.body == payload
        assert CONTENT_ENCODING not in out.headers

    def test_hits_paper_ratio_on_prose(self):
        streamlet = TextCompress("c", TEXT_COMPRESS_DEF)
        msg = synthetic_text_message(16 * 1024, seed=16)
        before = msg.body_size()
        [(_, out)] = streamlet.process("pi", msg, ctx())
        # "reduce the data size by up to 75%"
        assert out.body_size() <= before * 0.5

    def test_double_compress_rejected(self):
        streamlet = TextCompress("c", TEXT_COMPRESS_DEF)
        msg = synthetic_text_message(512, seed=17)
        [(_, out)] = streamlet.process("pi", msg, ctx())
        with pytest.raises(CodecError):
            streamlet.process("pi", out, ctx())

    def test_peer_id(self):
        assert TextCompress("c", TEXT_COMPRESS_DEF).peer_id == "text_decompress"


class TestEncryptor:
    def test_roundtrip_via_peer(self):
        streamlet = Encryptor("e", ENCRYPTOR_DEF)
        msg = MimeMessage(TEXT_PLAIN, b"top secret payload")
        [(_, out)] = streamlet.process("pi", msg, ctx())
        assert out.body != b"top secret payload"
        assert NONCE_HEADER in out.headers
        decrypt_message(out)
        assert out.body == b"top secret payload"

    def test_unique_nonces(self):
        streamlet = Encryptor("e", ENCRYPTOR_DEF)
        m1 = MimeMessage(TEXT_PLAIN, b"same")
        m2 = MimeMessage(TEXT_PLAIN, b"same")
        streamlet.process("pi", m1, ctx())
        streamlet.process("pi", m2, ctx())
        assert m1.headers.get(NONCE_HEADER) != m2.headers.get(NONCE_HEADER)
        assert m1.body != m2.body

    def test_custom_key(self):
        streamlet = Encryptor("e", ENCRYPTOR_DEF)
        msg = MimeMessage(TEXT_PLAIN, b"data")
        streamlet.process("pi", msg, ctx(key=b"other-key"))
        decrypt_message(msg, b"other-key")
        assert msg.body == b"data"

    def test_decrypt_without_nonce_rejected(self):
        with pytest.raises(CodecError):
            decrypt_message(MimeMessage(TEXT_PLAIN, b"x"))

    def test_layered_encryption_nonces_stack(self):
        # two encryption layers -> two stacked nonces, popped LIFO
        streamlet = Encryptor("e", ENCRYPTOR_DEF)
        msg = MimeMessage(TEXT_PLAIN, b"layered secret")
        streamlet.process("pi", msg, ctx())
        streamlet.process("pi", msg, ctx())
        assert msg.headers.get(NONCE_HEADER).count(",") == 1
        decrypt_message(msg)
        assert "," not in msg.headers.get(NONCE_HEADER)
        decrypt_message(msg)
        assert msg.body == b"layered secret"
        assert NONCE_HEADER not in msg.headers


class TestCache:
    def test_second_send_is_hit(self):
        cache = CacheStreamlet("c", CACHE_DEF)
        store = ClientCacheStore()
        for expected in ["MISS", "HIT"]:
            msg = MimeMessage(TEXT_PLAIN, b"static resource body")
            msg.headers.set(RESOURCE_HEADER, "/logo")
            [(_, out)] = cache.process("pi", msg, ctx())
            assert out.headers.get(CACHE_HEADER) == expected
            if expected == "HIT":
                assert out.body_size() == 0
            store.apply(out)
            assert out.body == b"static resource body"

    def test_changed_body_is_miss(self):
        cache = CacheStreamlet("c", CACHE_DEF)
        for body in [b"v1", b"v2"]:
            msg = MimeMessage(TEXT_PLAIN, body)
            msg.headers.set(RESOURCE_HEADER, "/page")
            [(_, out)] = cache.process("pi", msg, ctx())
            assert out.headers.get(CACHE_HEADER) == "MISS"
        assert cache.misses == 2

    def test_no_resource_header_passthrough(self):
        cache = CacheStreamlet("c", CACHE_DEF)
        msg = MimeMessage(TEXT_PLAIN, b"x")
        [(_, out)] = cache.process("pi", msg, ctx())
        assert CACHE_HEADER not in out.headers

    def test_cold_client_cache_hit_fails(self):
        msg = MimeMessage(TEXT_PLAIN, b"")
        msg.headers.set(RESOURCE_HEADER, "/x")
        msg.headers.set(CACHE_HEADER, "HIT")
        with pytest.raises(CodecError):
            ClientCacheStore().apply(msg)


class TestPowerSaving:
    def test_bundles_and_unbundles(self):
        streamlet = PowerSaving("p", POWER_SAVING_DEF)
        messages = [MimeMessage(TEXT_PLAIN, f"m{i}".encode()) for i in range(4)]
        emissions = []
        for msg in messages:
            emissions.extend(streamlet.process("pi", msg, ctx(bundle=4)))
        assert len(emissions) == 1
        [(_, bundle)] = emissions
        parts = unbundle_message(bundle)
        assert [p.body for p in parts] == [b"m0", b"m1", b"m2", b"m3"]

    def test_partial_bundle_held_then_flushed(self):
        streamlet = PowerSaving("p", POWER_SAVING_DEF)
        streamlet.process("pi", MimeMessage(TEXT_PLAIN, b"a"), ctx(bundle=3))
        assert streamlet.buffered == 1
        [(_, bundle)] = streamlet.flush()
        assert len(unbundle_message(bundle)) == 1
        assert streamlet.buffered == 0

    def test_bundle_size_one_is_passthrough(self):
        streamlet = PowerSaving("p", POWER_SAVING_DEF)
        msg = MimeMessage(TEXT_PLAIN, b"solo")
        assert streamlet.process("pi", msg, ctx(bundle=1)) == [("po", msg)]

    def test_unbundle_plain_message(self):
        msg = MimeMessage(TEXT_PLAIN, b"plain")
        assert unbundle_message(msg) == [msg]


class TestCommunicator:
    def test_transport_invoked(self):
        sent = []
        comm = Communicator("t", COMMUNICATOR_DEF)
        msg = MimeMessage(TEXT_PLAIN, b"bye")
        assert comm.process("pi1", msg, ctx(transport=sent.append)) == []
        assert sent == [msg]
        assert comm.sent == 1
        assert comm.bytes_sent == msg.total_size()

    def test_no_transport_counts_only(self):
        comm = Communicator("t", COMMUNICATOR_DEF)
        comm.process("pi2", MimeMessage(TEXT_PLAIN, b"x"), ctx())
        assert comm.sent == 1

    def test_terminal_definition(self):
        assert COMMUNICATOR_DEF.outputs() == ()
