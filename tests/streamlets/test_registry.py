from repro.mcl.compiler import MclCompiler
from repro.runtime.directory import StreamletDirectory
from repro.streamlets import builtin_definitions, register_builtin_streamlets


class TestRegistry:
    def test_all_builtins_advertised(self):
        directory = StreamletDirectory()
        register_builtin_streamlets(directory)
        expected = {
            "redirector", "switch", "merge", "img_down_sample",
            "map_to_16_grays", "gif2jpeg", "postscript2text",
            "text_compress", "encryptor", "cache", "powerSaving",
            "communicator", "aggregator", "customizer", "xml_streamer",
        }
        assert expected <= directory.names()

    def test_idempotent(self):
        directory = StreamletDirectory()
        register_builtin_streamlets(directory)
        register_builtin_streamlets(directory)  # must not raise

    def test_definitions_match_names(self):
        defs = builtin_definitions()
        assert all(name == d.name for name, d in defs.items())

    def test_mcl_can_compose_builtins(self):
        """The section 4.3 distillation composition compiles end to end."""
        directory = StreamletDirectory()
        register_builtin_streamlets(directory)
        compiler = MclCompiler(extra_streamlets=directory.definitions())
        source = """
stream distill{
  streamlet s1 = new-streamlet (switch);
  streamlet s2 = new-streamlet (img_down_sample);
  streamlet s5 = new-streamlet (postscript2text);
  streamlet s6 = new-streamlet (text_compress);
  streamlet s7 = new-streamlet (merge);
  connect (s1.po_img, s2.pi);
  connect (s1.po_ps, s5.pi);
  connect (s2.po, s7.pi1);
  connect (s5.po, s6.pi);
  connect (s6.po, s7.pi2);
}
"""
        table = compiler.compile(source).tables["distill"]
        assert len(table.links) == 5

    def test_richtext_feeds_text_compressor(self):
        """Section 4.4.1: text/richtext source into text sink is legal."""
        directory = StreamletDirectory()
        register_builtin_streamlets(directory)
        compiler = MclCompiler(extra_streamlets=directory.definitions())
        source = """
stream tiny{
  streamlet a = new-streamlet (postscript2text);
  streamlet b = new-streamlet (text_compress);
  connect (a.po, b.pi);
}
"""
        assert compiler.compile(source).tables["tiny"].links
