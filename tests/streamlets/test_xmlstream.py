"""Tests for the XML streaming service (streamer + client reassembly)."""

import pytest

from repro.codecs.sgml import Element, parse
from repro.errors import CodecError
from repro.mime.message import MimeMessage
from repro.runtime.streamlet import StreamletContext
from repro.streamlets.xmlstream import (
    APPLICATION_XML,
    SEQ_HEADER,
    STREAM_HEADER,
    XML_STREAMER_DEF,
    XmlReassembly,
    XmlStreamer,
)


def ctx(**params):
    return StreamletContext("x", params=params)


def sample_document(n_items=4):
    doc = Element("catalog", {"version": "2", "lang": "en"})
    for index in range(n_items):
        doc.add(Element("item", {"id": str(index)}).add(f"item body {index}"))
    return doc


def as_message(document):
    return MimeMessage(APPLICATION_XML, document.serialize().encode("utf-8"))


class TestStreamer:
    def test_splits_at_element_boundaries(self):
        streamer = XmlStreamer("x", XML_STREAMER_DEF)
        emissions = streamer.process("pi", as_message(sample_document(4)), ctx())
        assert len(emissions) == 4
        for index, (port, fragment) in enumerate(emissions):
            assert port == "po"
            assert fragment.headers.get(SEQ_HEADER) == f"{index}/4"
            assert fragment.headers.get(STREAM_HEADER) is not None

    def test_fragments_share_stream_id(self):
        streamer = XmlStreamer("x", XML_STREAMER_DEF)
        emissions = streamer.process("pi", as_message(sample_document(3)), ctx())
        ids = {f.headers.get(STREAM_HEADER) for _, f in emissions}
        assert len(ids) == 1

    def test_distinct_documents_distinct_ids(self):
        streamer = XmlStreamer("x", XML_STREAMER_DEF)
        a = streamer.process("pi", as_message(sample_document(2)), ctx())
        b = streamer.process("pi", as_message(sample_document(2)), ctx())
        assert a[0][1].headers.get(STREAM_HEADER) != b[0][1].headers.get(STREAM_HEADER)

    def test_single_child_one_fragment(self):
        streamer = XmlStreamer("x", XML_STREAMER_DEF)
        emissions = streamer.process("pi", as_message(sample_document(1)), ctx())
        assert len(emissions) == 1

    def test_element_payload_accepted(self):
        streamer = XmlStreamer("x", XML_STREAMER_DEF)
        msg = MimeMessage(APPLICATION_XML, sample_document(2))
        assert len(streamer.process("pi", msg, ctx())) == 2

    def test_bad_payload_rejected(self):
        streamer = XmlStreamer("x", XML_STREAMER_DEF)
        with pytest.raises(CodecError):
            streamer.process("pi", MimeMessage(APPLICATION_XML, b"not xml <<"), ctx())


class TestReassembly:
    def roundtrip(self, document, *, order=None):
        streamer = XmlStreamer("x", XML_STREAMER_DEF)
        emissions = streamer.process("pi", as_message(document), ctx())
        fragments = [f for _, f in emissions]
        if order is not None:
            fragments = [fragments[i] for i in order]
        assembly = XmlReassembly()
        rebuilt = None
        for fragment in fragments:
            result = assembly.add(fragment)
            if result is not None:
                rebuilt = result
        assert rebuilt is not None
        assert assembly.pending_streams == 0
        return parse(rebuilt.body.decode("utf-8"))

    def test_in_order(self):
        doc = sample_document(4)
        assert self.roundtrip(doc) == doc

    def test_out_of_order(self):
        doc = sample_document(4)
        assert self.roundtrip(doc, order=[2, 0, 3, 1]) == doc

    def test_root_attributes_survive(self):
        doc = sample_document(2)
        rebuilt = self.roundtrip(doc)
        assert rebuilt.attrs == {"version": "2", "lang": "en"}

    def test_interleaved_streams(self):
        streamer = XmlStreamer("x", XML_STREAMER_DEF)
        doc_a, doc_b = sample_document(2), sample_document(3)
        frags_a = [f for _, f in streamer.process("pi", as_message(doc_a), ctx())]
        frags_b = [f for _, f in streamer.process("pi", as_message(doc_b), ctx())]
        assembly = XmlReassembly()
        outs = []
        for fragment in [frags_a[0], frags_b[0], frags_b[1], frags_a[1], frags_b[2]]:
            result = assembly.add(fragment)
            if result is not None:
                outs.append(parse(result.body.decode("utf-8")))
        assert outs == [doc_a, doc_b]

    def test_missing_header_rejected(self):
        assembly = XmlReassembly()
        with pytest.raises(CodecError):
            assembly.add(MimeMessage(APPLICATION_XML, b"<x/>"))

    def test_non_envelope_rejected(self):
        assembly = XmlReassembly()
        msg = MimeMessage(APPLICATION_XML, b"<notenvelope/>")
        msg.headers.set(STREAM_HEADER, "s1")
        with pytest.raises(CodecError):
            assembly.add(msg)


class TestThroughTheClient:
    def test_full_pipeline_with_peer(self):
        """Server streams; the client's peer rebuilds transparently."""
        from repro.apps import build_server
        from repro.client.client import MobiGateClient
        from repro.runtime.scheduler import InlineScheduler

        server = build_server()
        stream = server.deploy_script("""
main stream xmlpipe{
  streamlet xs = new-streamlet (xml_streamer);
}
""")
        scheduler = InlineScheduler(stream)
        client = MobiGateClient()
        doc = sample_document(5)
        stream.post(as_message(doc))
        scheduler.pump()
        fragments = stream.collect()
        assert len(fragments) == 5
        delivered = []
        for fragment in fragments:
            delivered.extend(client.receive(fragment))
        assert len(delivered) == 1  # fragments absorbed until complete
        assert parse(delivered[0].body.decode("utf-8")) == doc
