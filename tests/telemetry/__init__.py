"""Tests for the repro.telemetry subsystem (metrics, tracing, exporters)."""
