"""Per-hop attribution: histograms, queue gauges, and the tracer's own loss."""

import threading

import pytest

from repro.apps import build_server
from repro.bench.harness import deploy_chain
from repro.gateway.session import ADMITTED, GatewaySession
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler
from repro.telemetry import NULL_RECORDER, MetricsRegistry, NullTelemetry, Telemetry
from repro.telemetry.attribution import (
    GATEWAY_E2E,
    HOP_DELIVERY,
    HOP_EGRESS,
    HOP_QUEUE_WAIT,
    HOP_SERVICE,
    decompose,
    summarize,
)

N_MESSAGES = 10
CHAIN = 3


@pytest.fixture()
def chain_run():
    telemetry = Telemetry(registry=MetricsRegistry(), trace_sample_interval=1)
    _server, stream, scheduler = deploy_chain(CHAIN, telemetry=telemetry)
    for _ in range(N_MESSAGES):
        stream.post(MimeMessage("text/plain", b"x" * 64))
        scheduler.pump()
    delivered = stream.collect()
    assert len(delivered) == N_MESSAGES
    yield telemetry, stream
    stream.end()


class TestAttributionHistograms:
    def test_queue_wait_is_recorded_for_every_claim(self, chain_run):
        telemetry, stream = chain_run
        rows = summarize(telemetry.registry, stream=stream.name)["queue_wait"]["rows"]
        assert rows, "no queue-wait observations"
        # every message is claimed once per chain node — complete, not sampled
        assert sum(r["count"] for r in rows) == N_MESSAGES * CHAIN
        assert all(r["sum_seconds"] >= 0.0 for r in rows)

    def test_service_component_is_per_instance(self, chain_run):
        telemetry, stream = chain_run
        rows = summarize(telemetry.registry, stream=stream.name)["service"]["rows"]
        instances = {r["instance"] for r in rows}
        assert len(instances) == CHAIN
        assert all(r["count"] == N_MESSAGES for r in rows)

    def test_egress_pickup_is_recorded_per_delivery(self, chain_run):
        telemetry, stream = chain_run
        rows = summarize(telemetry.registry, stream=stream.name)["egress"]["rows"]
        assert sum(r["count"] for r in rows) == N_MESSAGES

    def test_decompose_sums_components_per_message(self, chain_run):
        telemetry, stream = chain_run
        d = decompose(telemetry.registry, stream=stream.name)
        assert d["messages"] == N_MESSAGES * CHAIN  # fallback: no e2e family
        assert d["component_sum_seconds"] > 0.0
        assert set(d["components_seconds"]) == {
            "queue_wait", "service", "egress", "delivery",
        }
        # no gateway in this run, so there is no e2e ground truth
        assert d["e2e_mean_seconds"] is None and d["coverage"] is None

    def test_family_names_are_stable(self):
        assert HOP_QUEUE_WAIT == "mobigate_hop_queue_wait_seconds"
        assert HOP_SERVICE == "mobigate_hop_seconds"
        assert HOP_EGRESS == "mobigate_hop_egress_seconds"
        assert HOP_DELIVERY == "mobigate_hop_delivery_seconds"
        assert GATEWAY_E2E == "mobigate_gateway_e2e_seconds"


GATEWAY_MCL = """main stream gwchain{
  streamlet r0, r1 = new-streamlet (redirector);
  connect (r0.po, r1.pi);
}"""


class TestGatewayCoverage:
    def test_components_cover_the_e2e_ground_truth(self):
        """The four components explain >= 95% of measured end-to-end time.

        Regression guard for the egress-pump handoff gap: before the
        ``delivery`` component existed, collect()-to-callback time
        (serialization plus per-batch handoff) was unattributed and
        coverage sat around 0.91.
        """
        n = 50
        telemetry = Telemetry(registry=MetricsRegistry(), trace_sample_interval=1)
        server = build_server(telemetry=telemetry)
        stream = server.deploy_script(GATEWAY_MCL)
        session = GatewaySession(
            "k1", stream, InlineScheduler(stream), inline=True, telemetry=telemetry
        )
        frames = []
        done = threading.Event()

        def on_egress(_conn, frame):
            frames.append(frame)
            if len(frames) >= n:
                done.set()

        session.on_egress = on_egress
        try:
            for _ in range(n):
                ticket = session.offer(MimeMessage("text/plain", b"x" * 64))
                assert ticket.status == ADMITTED
            assert done.wait(10), f"only {len(frames)}/{n} frames delivered"
        finally:
            session.close()
        d = decompose(telemetry.registry, stream=stream.name)
        assert d["messages"] == n
        assert d["samples"]["delivery"] == n
        assert d["e2e_mean_seconds"] is not None
        assert d["coverage"] is not None and d["coverage"] >= 0.95, d


class TestQueueGauges:
    def test_depth_gauges_balance_to_zero_after_drain(self, chain_run):
        telemetry, _stream = chain_run
        family = telemetry.registry.get("mobigate_queue_depth")
        assert family is not None
        depths = {values: child.value for values, child in family.children()}
        assert depths, "no depth gauges were bound"
        assert all(value == 0.0 for value in depths.values()), depths

    def test_watermark_gauges_saw_traffic(self, chain_run):
        telemetry, _stream = chain_run
        family = telemetry.registry.get("mobigate_queue_watermark")
        assert family is not None
        marks = [child.value for _values, child in family.children()]
        assert any(value >= 1.0 for value in marks)

    def test_queues_expose_live_watermark(self, chain_run):
        _telemetry, stream = chain_run
        rows = stream.queue_introspect()
        assert rows
        assert any(r["watermark"] >= 1 for r in rows)
        assert all(r["depth"] == 0 for r in rows)


class TestTracerLoss:
    def test_span_eviction_is_counted_and_exported(self):
        registry = MetricsRegistry()
        telemetry = Telemetry(registry=registry, max_spans=4)
        for _ in range(7):
            span = telemetry.tracer.start_span("hop:x")
            telemetry.tracer.end_span(span)
        assert telemetry.tracer.recorded == 7
        assert telemetry.tracer.dropped == 3
        telemetry.flush()
        family = registry.get("mobigate_trace_spans_dropped_total")
        assert family is not None
        (_values, child), = family.children()
        assert child.value == 3
        text = telemetry.prometheus()
        assert "mobigate_trace_spans_dropped_total 3" in text
        assert "mobigate_trace_spans_total 7" in text

    def test_no_eviction_means_zero_drops(self):
        registry = MetricsRegistry()
        telemetry = Telemetry(registry=registry, max_spans=16)
        span = telemetry.tracer.start_span("hop:x")
        telemetry.tracer.end_span(span)
        telemetry.flush()
        (_values, child), = registry.get(
            "mobigate_trace_spans_dropped_total"
        ).children()
        assert child.value == 0


class TestNullTwin:
    def test_null_telemetry_carries_the_null_recorder(self):
        null = NullTelemetry()
        assert null.recorder is NULL_RECORDER
        assert null.enabled is False
        # the private registry stays empty: no attribution families leak
        assert null.registry.get("mobigate_hop_queue_wait_seconds") is None
        assert null.registry.get("mobigate_trace_spans_dropped_total") is None
