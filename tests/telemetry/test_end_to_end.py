"""Acceptance: the §7.5 pipeline under ThreadedScheduler, fully observed.

Deploys the web-acceleration stream, pushes a mixed workload through it
with a mid-run LOW_BANDWIDTH reconfiguration, reverses results through a
MobiGATE client sharing the same telemetry facade, and then checks the
three acceptance artifacts: per-streamlet hop histograms, one complete
trace including client-side peer spans, and a parsing Prometheus export.
"""

import re

import pytest

from repro.apps import WEB_ACCELERATION_MCL, build_server
from repro.client.client import MobiGateClient
from repro.runtime.scheduler import ThreadedScheduler
from repro.telemetry import MetricsRegistry, Telemetry
from repro.workloads.generators import WebWorkload

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? \S+$"
)


@pytest.fixture(scope="module")
def observed_run():
    telemetry = Telemetry(registry=MetricsRegistry(), trace_sample_interval=1)
    server = build_server(telemetry=telemetry)
    stream = server.deploy_script(WEB_ACCELERATION_MCL)
    client = MobiGateClient(telemetry=telemetry)
    stream.set_param("comm", "transport", client.receive)

    workload = list(WebWorkload(seed=11, image_fraction=0.35).messages(10))
    scheduler = ThreadedScheduler(stream)
    scheduler.start()
    try:
        for message in workload[:5]:
            stream.post(message)
        assert scheduler.drain(timeout=10.0)
        server.events.raise_event("LOW_BANDWIDTH")
        scheduler.ensure_workers()
        for message in workload[5:]:
            stream.post(message)
        assert scheduler.drain(timeout=10.0)
    finally:
        scheduler.stop()
    stream.end()
    return telemetry, stream, client


class TestAcceptance:
    def test_hop_histograms_per_streamlet(self, observed_run):
        telemetry, _stream, _client = observed_run
        family = telemetry.registry.get("mobigate_hop_seconds")
        counts = {values[1]: child.count for values, child in family.children()}
        # every message crosses the switch and the communicator
        assert counts.get("sw", 0) >= 10
        assert counts.get("comm", 0) >= 10
        # the compressor joined the path after LOW_BANDWIDTH
        assert counts.get("tc", 0) >= 1

    def test_complete_trace_with_client_peer_spans(self, observed_run):
        telemetry, _stream, _client = observed_run
        complete = []
        for trace_id in telemetry.tracer.trace_ids():
            names = [s.name for s in telemetry.tracer.trace(trace_id)]
            if (
                "ingress" in names
                and any(n.startswith("hop:") for n in names)
                and any(n.startswith("peer:") for n in names)
            ):
                complete.append(trace_id)
        assert complete, "no trace spans server hops AND client peers"

    def test_reconfiguration_span_recorded(self, observed_run):
        telemetry, stream, _client = observed_run
        reconfigs = [s for s in telemetry.tracer.spans() if s.name == "reconfig"]
        assert len(reconfigs) == 1
        assert reconfigs[0].attrs["event"] == "LOW_BANDWIDTH"
        family = telemetry.registry.get("mobigate_reconfig_seconds")
        assert family.labels(stream.name, "LOW_BANDWIDTH").count == 1

    def test_prometheus_export_parses(self, observed_run):
        telemetry, _stream, _client = observed_run
        text = telemetry.prometheus()
        assert "mobigate_hop_seconds_bucket" in text
        for line in text.splitlines():
            if not line.startswith("#"):
                assert _SAMPLE_RE.match(line), line

    def test_client_counters_and_delivery(self, observed_run):
        telemetry, _stream, client = observed_run
        assert client.delivered
        family = telemetry.registry.get("mobigate_client_messages_total")
        assert family.unlabelled().value >= len(client.delivered)

    def test_stream_counters_mirrored(self, observed_run):
        telemetry, stream, _client = observed_run
        telemetry.flush()
        family = telemetry.registry.get("mobigate_stream_messages_in_total")
        assert family.labels(stream.name).value == 10
