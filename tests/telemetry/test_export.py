"""Exporters: golden Prometheus text, format parsing, strict JSON."""

import json
import re

from repro.telemetry.export import dump, snapshot, to_json, to_prometheus
from repro.telemetry.metrics import MetricsRegistry

# name or name{labels}, one space, a value — the exposition line shape
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? \S+$"
)


def small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.gauge("demo_level", "Current level").unlabelled().set(2.5)
    registry.counter("demo_requests_total", "Requests seen", labels=("kind",)).labels(
        "a"
    ).inc(3)
    registry.histogram("demo_seconds", "Latency", buckets=(0.5, 1.0)).unlabelled().observe(
        0.25
    )
    return registry


GOLDEN_PROMETHEUS = """\
# HELP demo_level Current level
# TYPE demo_level gauge
demo_level 2.5
# HELP demo_requests_total Requests seen
# TYPE demo_requests_total counter
demo_requests_total{kind="a"} 3
# HELP demo_seconds Latency
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.5"} 1
demo_seconds_bucket{le="1"} 1
demo_seconds_bucket{le="+Inf"} 1
demo_seconds_sum 0.25
demo_seconds_count 1
"""


class TestPrometheus:
    def test_golden_output(self):
        assert to_prometheus(small_registry()) == GOLDEN_PROMETHEUS

    def test_every_sample_line_parses(self):
        for line in to_prometheus(small_registry()).splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$", line)
            else:
                assert _SAMPLE_RE.match(line), line

    def test_histogram_buckets_are_cumulative_and_match_count(self):
        registry = MetricsRegistry()
        h = registry.histogram("h_seconds", "x", buckets=(0.001, 0.01)).unlabelled()
        for v in (0.0005, 0.005, 5.0):
            h.observe(v)
        text = to_prometheus(registry)
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_seconds_bucket")
        ]
        assert buckets == sorted(buckets)  # cumulative: never decreasing
        assert buckets[-1] == 3
        assert "h_seconds_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "x", labels=("k",)).labels('say "hi"').inc()
        assert 'k="say \\"hi\\""' in to_prometheus(registry)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJson:
    def test_snapshot_round_trips_through_strict_json(self):
        text = to_json(small_registry())
        tree = json.loads(text)
        names = [f["name"] for f in tree["families"]]
        assert names == ["demo_level", "demo_requests_total", "demo_seconds"]

    def test_histogram_sample_shape(self):
        tree = snapshot(small_registry())
        hist = tree["families"][-1]["samples"][0]
        assert hist["count"] == 1
        assert hist["sum"] == 0.25
        assert hist["buckets"][-1] == {"le": None, "count": 1}  # +Inf → null

    def test_empty_histogram_serialises_non_finite_as_null(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "x", buckets=(1.0,)).unlabelled()
        tree = snapshot(registry)
        sample = tree["families"][0]["samples"][0]
        assert sample["count"] == 0
        assert sample["min"] is None and sample["max"] is None
        json.loads(to_json(registry))  # allow_nan=False must not raise


class TestDump:
    def test_dump_mentions_every_populated_family(self):
        text = dump(small_registry())
        assert "demo_level" in text
        assert "demo_requests_total" in text
        assert "count=1" in text
