"""Metric primitives: buckets, moments, registry type discipline."""

import math

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    exponential_buckets,
)


class TestExponentialBuckets:
    def test_values(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_default_latency_buckets_span_microsecond_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 1.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    @pytest.mark.parametrize("bad", [(0, 2, 3), (1, 1.0, 3), (1, 2, 0)])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(TelemetryError):
            exponential_buckets(*bad)


class TestHistogramBuckets:
    def make(self, bounds=(0.001, 0.01, 0.1)):
        registry = MetricsRegistry()
        return registry.histogram("h_seconds", "x", buckets=bounds).unlabelled()

    def test_upper_bound_is_inclusive(self):
        # the Prometheus le convention: a sample equal to a bound lands in
        # that bound's bucket, not the next one
        h = self.make()
        h.observe(0.001)
        assert h.counts == [1, 0, 0, 0]

    def test_between_bounds(self):
        h = self.make()
        h.observe(0.005)
        assert h.counts == [0, 1, 0, 0]

    def test_overflow_bucket(self):
        h = self.make()
        h.observe(5.0)
        assert h.counts == [0, 0, 0, 1]

    def test_below_first_bound(self):
        h = self.make()
        h.observe(0.0)
        assert h.counts == [1, 0, 0, 0]

    def test_cumulative_ends_with_inf_and_total(self):
        h = self.make()
        for v in (0.0005, 0.005, 0.005, 5.0):
            h.observe(v)
        cumulative = h.cumulative()
        assert cumulative[0] == (0.001, 1)
        assert cumulative[1] == (0.01, 3)
        assert cumulative[2] == (0.1, 3)
        assert cumulative[-1][0] == math.inf
        assert cumulative[-1][1] == 4 == h.count

    def test_moments_match_samples(self):
        h = self.make()
        samples = [0.002, 0.004, 0.009]
        for v in samples:
            h.observe(v)
        assert h.stats.mean == pytest.approx(sum(samples) / 3)
        assert h.stats.minimum == 0.002
        assert h.stats.maximum == 0.009
        assert h.sum == pytest.approx(sum(samples))

    def test_non_increasing_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.histogram("h", "x", buckets=(0.1, 0.1))
        with pytest.raises(TelemetryError):
            registry.histogram("h", "x", buckets=(0.2, 0.1))


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        c = MetricsRegistry().counter("c_total", "x").unlabelled()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("c_total", "x").unlabelled()
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("g", "x").unlabelled()
        g.set(10.0)
        g.dec(4.0)
        g.inc(1.0)
        assert g.value == 7.0


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "x", labels=("k",))
        b = registry.counter("c_total", "x", labels=("k",))
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "x")
        with pytest.raises(TelemetryError):
            registry.gauge("m", "x")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "x", labels=("a",))
        with pytest.raises(TelemetryError):
            registry.counter("m", "x", labels=("b",))

    def test_illegal_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("bad-name", "x")
        with pytest.raises(TelemetryError):
            registry.counter("ok", "x", labels=("bad-label",))

    def test_children_addressed_by_label_values(self):
        family = MetricsRegistry().counter("c_total", "x", labels=("k",))
        family.labels("a").inc()
        family.labels("a").inc()
        family.labels("b").inc()
        assert family.labels("a").value == 2
        assert family.labels("b").value == 1

    def test_wrong_label_arity_rejected(self):
        family = MetricsRegistry().counter("c_total", "x", labels=("k",))
        with pytest.raises(TelemetryError):
            family.labels("a", "b")

    def test_families_sorted_for_stable_export(self):
        registry = MetricsRegistry()
        registry.counter("z_total", "x")
        registry.counter("a_total", "x")
        assert [f.name for f in registry.families()] == ["a_total", "z_total"]
