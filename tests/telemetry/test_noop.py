"""The no-op twin: selectable, inert, and allocation-free on the hot path."""

from repro.bench.harness import deploy_chain
from repro.mime.headers import CONTENT_TRACE
from repro.mime.message import MimeMessage
from repro.telemetry import (
    NULL_TELEMETRY,
    NullStreamTelemetry,
    NullTelemetry,
    Telemetry,
)


class TestNullTelemetry:
    def test_is_a_telemetry(self):
        assert isinstance(NULL_TELEMETRY, Telemetry)
        assert NULL_TELEMETRY.enabled is False

    def test_bind_stream_returns_shared_singleton(self):
        a = NULL_TELEMETRY.bind_stream("one")
        b = NULL_TELEMETRY.bind_stream("two")
        assert a is b
        assert isinstance(a, NullStreamTelemetry)
        assert a.enabled is False

    def test_bindings_are_inert(self):
        assert NULL_TELEMETRY.pool_gauge("s") is None
        assert NULL_TELEMETRY.event_counter("s") is None
        assert NULL_TELEMETRY.link_bandwidth_gauge("l") is None
        assert NULL_TELEMETRY.link_event_counter("l", "E") is None
        assert NULL_TELEMETRY.client_counters() == (None, None)
        tm = NULL_TELEMETRY.bind_stream("s")
        assert tm.hop_histogram("i") is None
        assert tm.channel_wait_histogram("c") is None
        assert tm.reconfig_begin("E") is None
        assert tm.admit(MimeMessage("text/plain", b"x")) is False

    def test_run_leaves_no_metrics_no_spans_no_headers(self):
        _server, stream, scheduler = deploy_chain(3, telemetry=NULL_TELEMETRY)
        for i in range(5):
            stream.post(MimeMessage("text/plain", b"m%d" % i))
        scheduler.pump()
        delivered = stream.collect()
        stream.end()

        assert len(delivered) == 5
        for message in delivered:
            assert message.headers.get(CONTENT_TRACE) is None
        assert len(NULL_TELEMETRY.registry) == 0
        assert NULL_TELEMETRY.tracer.spans() == []

    def test_peer_hop_is_inert(self):
        message = MimeMessage("text/plain", b"x")
        message.headers.set_trace("t", "p")
        before = message.headers.get(CONTENT_TRACE)
        NULL_TELEMETRY.peer_hop("p", message, [message], 0.001)
        assert message.headers.get(CONTENT_TRACE) == before
        assert len(NULL_TELEMETRY.registry) == 0

    def test_fresh_null_instances_also_inert(self):
        # NullTelemetry is constructible (not only the shared singleton)
        own = NullTelemetry()
        assert own.enabled is False
        assert len(own.registry) == 0
