"""FlightRecorder: ordering, eviction, tail cursors, dumps, and the null twin."""

import json
import threading
import time

from repro.telemetry import NULL_RECORDER, FlightRecorder, NullFlightRecorder
from repro.telemetry.recorder import flight_dump_dir


class TestRecording:
    def test_sequence_numbers_are_monotonic_from_one(self):
        recorder = FlightRecorder()
        seqs = [recorder.record("drop", stream="s", msg_id=f"m{i}") for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert recorder.last_seq == 5
        assert [event["seq"] for event in recorder.events()] == seqs

    def test_event_shape(self):
        recorder = FlightRecorder()
        recorder.record("dead_letter", stream="s", msg_id="m1", reason="boom")
        event = recorder.events()[0]
        assert event["seq"] == 1
        assert isinstance(event["t"], float)
        assert event["category"] == "dead_letter"
        assert event["stream"] == "s"
        assert event["msg_id"] == "m1"
        assert event["reason"] == "boom"

    def test_capacity_evicts_oldest_and_counts_drops(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record("tick", n=i)
        assert len(recorder) == 3
        assert recorder.recorded == 5
        assert recorder.dropped == 2
        assert [event["seq"] for event in recorder.events()] == [3, 4, 5]

    def test_concurrent_writers_never_lose_sequence_numbers(self):
        recorder = FlightRecorder(capacity=10_000)
        n_threads, per_thread = 8, 500

        def hammer():
            for _ in range(per_thread):
                recorder.record("tick")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = sorted(event["seq"] for event in recorder.events())
        assert len(seqs) == n_threads * per_thread
        assert len(set(seqs)) == len(seqs)
        assert recorder.recorded == n_threads * per_thread


class TestTail:
    def test_tail_resumes_from_cursor(self):
        recorder = FlightRecorder()
        for i in range(4):
            recorder.record("tick", n=i)
        first = recorder.tail(0, limit=2)
        assert [e["seq"] for e in first["events"]] == [1, 2]
        assert first["cursor"] == 2
        rest = recorder.tail(first["cursor"])
        assert [e["seq"] for e in rest["events"]] == [3, 4]
        assert rest["cursor"] == 4
        assert recorder.tail(rest["cursor"])["events"] == []

    def test_tail_reports_eviction_gap(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(5):
            recorder.record("tick", n=i)
        tail = recorder.tail(1)
        # seqs 2-3 were evicted before this reader caught up
        assert tail["gap"] == 2
        assert [e["seq"] for e in tail["events"]] == [4, 5]

    def test_tail_without_gap_when_cursor_is_current(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(5):
            recorder.record("tick", n=i)
        assert recorder.tail(3)["gap"] == 0


class TestDump:
    def test_dump_writes_json_artifact(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("fault_injected", stream="s", instance="b")
        path = recorder.dump("s", reason="test escalation", directory=tmp_path)
        data = json.loads((tmp_path / "FLIGHT_s.json").read_text())
        assert path.endswith("FLIGHT_s.json")
        assert data["reason"] == "test escalation"
        assert data["events"][0]["category"] == "fault_injected"
        assert recorder.dumps["s"] == path

    def test_dump_anchors_both_clock_domains(self, tmp_path):
        """Event times are convertible to wall clock via the dual anchor.

        Ring events carry ``perf_counter`` timestamps while ``dumped_at``
        is wall clock; the payload pairs the two clocks sampled at the
        same instant (``dumped_at_monotonic``) so any event's wall time
        is ``dumped_at - (dumped_at_monotonic - event.t)``.
        """
        recorder = FlightRecorder()
        before_wall, before_mono = time.time(), time.perf_counter()
        recorder.record("tick")
        recorder.dump("anchor", reason="r", directory=tmp_path)
        after_wall, after_mono = time.time(), time.perf_counter()
        data = json.loads((tmp_path / "FLIGHT_anchor.json").read_text())
        assert before_mono <= data["dumped_at_monotonic"] <= after_mono
        assert before_wall <= data["dumped_at"] <= after_wall
        event = data["events"][0]
        wall = data["dumped_at"] - (data["dumped_at_monotonic"] - event["t"])
        assert before_wall <= wall <= after_wall

    def test_dump_label_is_sanitized(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("tick")
        path = recorder.dump("a/b c~g1", reason="r", directory=tmp_path)
        assert "/" not in path.rsplit("FLIGHT_", 1)[1]

    def test_dump_dir_comes_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        assert flight_dump_dir() == tmp_path
        recorder = FlightRecorder()
        recorder.record("tick")
        recorder.dump("envtest", reason="r")
        assert (tmp_path / "FLIGHT_envtest.json").exists()


class TestNullTwin:
    def test_null_recorder_is_inert(self, tmp_path):
        assert isinstance(NULL_RECORDER, NullFlightRecorder)
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.record("drop", stream="s") == 0
        assert NULL_RECORDER.events() == []
        tail = NULL_RECORDER.tail(0)
        assert tail["events"] == [] and tail["cursor"] == 0
        assert NULL_RECORDER.dump("x", reason="r", directory=tmp_path) == ""
        assert len(NULL_RECORDER) == 0
        assert list(tmp_path.iterdir()) == []

    def test_null_recorder_has_no_per_instance_state(self):
        assert NullFlightRecorder.__slots__ == ()
