"""Stream counters: the export-time mirror of StreamStats, per scheduler."""

import pytest

from repro.mcl.parser import parse_script
from repro.mime.message import MimeMessage
from repro.runtime.scheduler import InlineScheduler, ThreadedScheduler
from repro.runtime.server import MobiGateServer
from repro.runtime.streamlet import Streamlet
from repro.telemetry import MetricsRegistry, Telemetry

LEAKY = """
streamlet leak{
  port{ in pi : text/*; out po : text/plain; }
}
main stream leaky{
  streamlet l = new-streamlet (leak);
}
"""


class Leak(Streamlet):
    """Emits on a port that exists nowhere: the open-circuit hazard."""

    def process(self, port, message, ctx):
        return [("bogus", message)]


def deploy_leaky(telemetry: Telemetry):
    server = MobiGateServer(telemetry=telemetry)
    for definition in parse_script(LEAKY).streamlets:
        server.directory.advertise(definition, Leak)
    return server.deploy_script(LEAKY)


def counter_value(telemetry: Telemetry, leaf: str, stream: str) -> int:
    telemetry.flush()
    family = telemetry.registry.get(f"mobigate_stream_{leaf}_total")
    return family.labels(stream).value


class TestOpenCircuitDrops:
    def test_counted_under_inline_scheduler(self):
        telemetry = Telemetry(registry=MetricsRegistry())
        stream = deploy_leaky(telemetry)
        scheduler = InlineScheduler(stream)
        for i in range(3):
            stream.post(MimeMessage("text/plain", b"m%d" % i))
        scheduler.pump()
        stream.end()

        assert stream.stats.open_circuit_drops == 3
        assert counter_value(telemetry, "open_circuit_drops", "leaky") == 3

    def test_counted_under_threaded_scheduler(self):
        telemetry = Telemetry(registry=MetricsRegistry())
        stream = deploy_leaky(telemetry)
        scheduler = ThreadedScheduler(stream)
        scheduler.start()
        try:
            for i in range(3):
                stream.post(MimeMessage("text/plain", b"m%d" % i))
            assert scheduler.drain(timeout=5.0)
        finally:
            scheduler.stop()
        stream.end()

        assert stream.stats.open_circuit_drops == 3
        assert counter_value(telemetry, "open_circuit_drops", "leaky") == 3


class TestCounterMirror:
    def test_flush_mirrors_every_stat_field(self):
        telemetry = Telemetry(registry=MetricsRegistry())
        stream = deploy_leaky(telemetry)
        InlineScheduler(stream).run_to_completion(
            [MimeMessage("text/plain", b"x"), MimeMessage("text/plain", b"y")]
        )
        stream.end()
        assert counter_value(telemetry, "messages_in", "leaky") == 2
        assert counter_value(telemetry, "processed", "leaky") == 2
        assert counter_value(telemetry, "messages_out", "leaky") == 0

    def test_counters_not_written_until_flush(self):
        # the hot path increments plain ints; the registry mirror is
        # export-time only (Telemetry.flush / snapshot / prometheus)
        telemetry = Telemetry(registry=MetricsRegistry())
        stream = deploy_leaky(telemetry)
        InlineScheduler(stream).run_to_completion([MimeMessage("text/plain", b"x")])
        family = telemetry.registry.get("mobigate_stream_messages_in_total")
        assert family.labels("leaky").value == 0
        telemetry.flush()
        assert family.labels("leaky").value == 1
        stream.end()

    def test_snapshot_and_prometheus_flush_implicitly(self):
        telemetry = Telemetry(registry=MetricsRegistry())
        stream = deploy_leaky(telemetry)
        InlineScheduler(stream).run_to_completion([MimeMessage("text/plain", b"x")])
        assert 'mobigate_stream_messages_in_total{stream="leaky"} 1' in telemetry.prometheus()
        stream.end()


class TestQueueDropSampling:
    def test_sample_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Telemetry(registry=MetricsRegistry(), trace_sample_interval=0)
