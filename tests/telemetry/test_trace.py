"""Trace propagation: ingress → streamlet hops → client peers."""

from repro.bench.harness import deploy_chain
from repro.mime.headers import CONTENT_TRACE
from repro.mime.message import MimeMessage
from repro.runtime.stream import ReconfigTiming
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.trace import Tracer


def traced_telemetry(interval: int = 1) -> Telemetry:
    return Telemetry(registry=MetricsRegistry(), trace_sample_interval=interval)


class TestTracer:
    def test_span_ids_and_trace_query(self):
        tracer = Tracer()
        trace_id = tracer.new_trace_id()
        a = tracer.start_span("a", trace_id=trace_id)
        tracer.end_span(a)
        b = tracer.start_span("b", trace_id=trace_id, parent_id=a.span_id)
        tracer.end_span(b)
        spans = tracer.trace(trace_id)
        assert [s.name for s in spans] == ["a", "b"]
        assert spans[1].parent_id == spans[0].span_id

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            span = tracer.start_span(f"s{i}", trace_id="t")
            tracer.end_span(span)
        assert len(tracer.spans()) == 4
        assert tracer.spans()[-1].name == "s9"

    def test_format_trace_renders_tree(self):
        tracer = Tracer()
        root = tracer.start_span("root", trace_id="t1")
        tracer.end_span(root)
        child = tracer.start_span("child", trace_id="t1", parent_id=root.span_id)
        tracer.end_span(child)
        text = tracer.format_trace("t1")
        assert "root" in text and "child" in text


class TestChainPropagation:
    def test_three_streamlet_chain_yields_one_parented_trace(self):
        telemetry = traced_telemetry()
        _server, stream, scheduler = deploy_chain(3, telemetry=telemetry)
        stream.post(MimeMessage("text/plain", b"payload"))
        scheduler.pump()
        [out] = stream.collect()
        stream.end()

        [trace_id] = telemetry.tracer.trace_ids()
        spans = telemetry.tracer.trace(trace_id)
        assert [s.name for s in spans] == ["ingress", "hop:r0", "hop:r1", "hop:r2"]
        # every hop parents on the previous span: one unbroken chain
        for prev, span in zip(spans, spans[1:]):
            assert span.parent_id == prev.span_id
        # the delivered message carries the last hop as its parent context
        assert out.headers.trace_context == (trace_id, spans[-1].span_id)

    def test_sampling_interval_traces_first_and_every_nth(self):
        telemetry = traced_telemetry(interval=4)
        _server, stream, scheduler = deploy_chain(1, telemetry=telemetry)
        traced = []
        for i in range(8):
            stream.post(MimeMessage("text/plain", b"m%d" % i))
            scheduler.pump()
            for out in stream.collect():
                if out.headers.get(CONTENT_TRACE) is not None:
                    traced.append(i)
        stream.end()
        assert traced == [0, 4]

    def test_channel_waits_recorded_for_traced_messages(self):
        telemetry = traced_telemetry()
        _server, stream, scheduler = deploy_chain(2, telemetry=telemetry)
        stream.post(MimeMessage("text/plain", b"x"))
        scheduler.pump()
        stream.collect()
        stream.end()
        family = telemetry.registry.get("mobigate_channel_wait_seconds")
        assert family is not None
        total = sum(child.count for _values, child in family.children())
        # at least the ingress edge channel and the r0→r1 hop channel
        assert total >= 2

    def test_untraced_messages_leave_headers_clean(self):
        telemetry = traced_telemetry(interval=100)
        _server, stream, scheduler = deploy_chain(1, telemetry=telemetry)
        stream.post(MimeMessage("text/plain", b"first"))  # always traced
        stream.post(MimeMessage("text/plain", b"second"))
        scheduler.pump()
        first, second = stream.collect()
        stream.end()
        assert first.headers.get(CONTENT_TRACE) is not None
        assert second.headers.get(CONTENT_TRACE) is None


class TestClientPeerPropagation:
    def test_peer_hop_extends_trace_and_advances_context(self):
        telemetry = traced_telemetry()
        message = MimeMessage("text/plain", b"wire")
        message.headers.set_trace("trace-7", "span-3")
        raw = message.headers.get(CONTENT_TRACE)
        telemetry.peer_hop("text_decompress", message, [message], 0.001)

        [span] = telemetry.tracer.spans()
        assert span.name == "peer:text_decompress"
        assert span.trace_id == "trace-7"
        assert span.parent_id == "span-3"
        # in-place results keep unwinding with the advanced context
        assert message.headers.get(CONTENT_TRACE) != raw
        assert message.headers.trace_context == ("trace-7", span.span_id)

    def test_peer_hop_records_latency_histogram(self):
        telemetry = traced_telemetry()
        message = MimeMessage("text/plain", b"wire")
        telemetry.peer_hop("untag", message, [message], 0.002)
        family = telemetry.registry.get("mobigate_client_peer_seconds")
        assert family.labels("untag").count == 1

    def test_split_results_each_inherit_the_advanced_context(self):
        telemetry = traced_telemetry()
        message = MimeMessage("text/plain", b"bundle")
        message.headers.set_trace("trace-9", "span-1")
        raw = message.headers.get(CONTENT_TRACE)
        parts = [MimeMessage("text/plain", b"a"), MimeMessage("text/plain", b"b")]
        for part in parts:
            part.headers.set(CONTENT_TRACE, raw)
        telemetry.peer_hop("unbundler", message, parts, 0.001)
        [span] = telemetry.tracer.spans()
        for part in parts:
            assert part.headers.trace_context == ("trace-9", span.span_id)


class TestReconfigSpans:
    def test_reconfig_epoch_becomes_span_and_histogram(self):
        telemetry = traced_telemetry()
        tm = telemetry.bind_stream("s")
        span = tm.reconfig_begin("LOW_BANDWIDTH")
        timing = ReconfigTiming(suspend=0.001, channel_ops=0.002, activate=0.003, actions=2)
        tm.reconfig_end(span, "LOW_BANDWIDTH", timing)

        [recorded] = telemetry.tracer.spans()
        assert recorded.name == "reconfig"
        assert recorded.attrs["event"] == "LOW_BANDWIDTH"
        assert recorded.attrs["actions"] == 2
        family = telemetry.registry.get("mobigate_reconfig_seconds")
        child = family.labels("s", "LOW_BANDWIDTH")
        assert child.count == 1
        assert child.stats.minimum == timing.total
