"""Documentation gate: every public item in ``repro`` carries a docstring.

Walks the package, imports every module, and checks modules, public
classes, public functions, and public methods defined in this codebase.
Dataclass-generated members and dunder methods are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

_EXEMPT_METHODS = {
    # object protocol / generated members that need no prose
    "__init__", "__post_init__",
}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_documented(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


def _public_classes(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) and obj.__module__ == module.__name__:
            yield name, obj


def _public_functions(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isfunction(obj) and obj.__module__ == module.__name__:
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_documented(module):
    undocumented = [
        f"{module.__name__}.{name}"
        for name, cls in _public_classes(module)
        if not (cls.__doc__ and cls.__doc__.strip())
    ]
    assert not undocumented, f"classes lacking docstrings: {undocumented}"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_functions_documented(module):
    undocumented = [
        f"{module.__name__}.{name}"
        for name, fn in _public_functions(module)
        if not (fn.__doc__ and fn.__doc__.strip())
    ]
    assert not undocumented, f"functions lacking docstrings: {undocumented}"


def _inherits_doc(cls, name) -> bool:
    """True when a base class documents the same method (override)."""
    for base in cls.__mro__[1:]:
        member = base.__dict__.get(name)
        if member is not None and (getattr(member, "__doc__", None) or "").strip():
            return True
    return False


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_methods_documented(module):
    undocumented = []
    for cls_name, cls in _public_classes(module):
        for name, member in vars(cls).items():
            if name.startswith("_") or name in _EXEMPT_METHODS:
                continue
            if not inspect.isfunction(member):
                continue
            doc = member.__doc__
            if not (doc and doc.strip()) and not _inherits_doc(cls, name):
                undocumented.append(f"{module.__name__}.{cls_name}.{name}")
    assert not undocumented, f"methods lacking docstrings: {undocumented}"
