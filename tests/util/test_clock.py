import pytest

from repro.util.clock import VirtualClock, WallClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now() == 1.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_sleep_advances(self):
        clock = VirtualClock()
        clock.sleep(3.0)
        assert clock.now() == 3.0

    def test_advance_to_future(self):
        clock = VirtualClock(1.0)
        assert clock.advance_to(4.0) == 4.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(5.0)
        assert clock.advance_to(2.0) == 5.0
        assert clock.now() == 5.0


class TestWallClock:
    def test_monotonic(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_elapses(self):
        clock = WallClock()
        start = clock.now()
        clock.sleep(0.01)
        assert clock.now() - start >= 0.009

    def test_sleep_zero_returns(self):
        WallClock().sleep(0)  # must not raise or hang
