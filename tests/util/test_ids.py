import threading

import pytest

from repro.util.ids import IdGenerator, session_id


class TestIdGenerator:
    def test_sequential(self):
        gen = IdGenerator("msg")
        assert gen.next() == "msg-0"
        assert gen.next() == "msg-1"

    def test_prefix_property(self):
        assert IdGenerator("x").prefix == "x"

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator("")

    def test_independent_generators(self):
        a, b = IdGenerator("a"), IdGenerator("b")
        a.next()
        assert b.next() == "b-0"

    def test_iterable(self):
        gen = IdGenerator("it")
        it = iter(gen)
        assert [next(it) for _ in range(3)] == ["it-0", "it-1", "it-2"]

    def test_thread_safety_no_duplicates(self):
        gen = IdGenerator("t")
        results: list[str] = []
        lock = threading.Lock()

        def worker():
            local = [gen.next() for _ in range(200)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == len(set(results)) == 1600


def test_session_ids_unique():
    ids = {session_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(s.startswith("sess-") for s in ids)
