import math
import statistics

import pytest

from repro.util.stats import RunningStats, Timer, percentile


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)

    def test_single_value(self):
        s = RunningStats()
        s.add(4.0)
        assert s.mean == 4.0
        assert s.minimum == s.maximum == 4.0
        assert math.isnan(s.variance)

    def test_matches_statistics_module(self):
        data = [1.5, 2.0, -3.0, 8.25, 0.0, 4.5]
        s = RunningStats()
        s.extend(data)
        assert s.mean == pytest.approx(statistics.fmean(data))
        assert s.variance == pytest.approx(statistics.variance(data))
        assert s.stdev == pytest.approx(statistics.stdev(data))
        assert s.minimum == min(data)
        assert s.maximum == max(data)

    def test_merge_equals_single_stream(self):
        left, right, whole = RunningStats(), RunningStats(), RunningStats()
        data_a, data_b = [1.0, 2.0, 3.0], [10.0, -5.0]
        left.extend(data_a)
        right.extend(data_b)
        whole.extend(data_a + data_b)
        merged = left.merge(right)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_with_empty(self):
        s = RunningStats()
        s.extend([1.0, 2.0])
        merged = s.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)


class TestTimer:
    def test_measures_elapsed(self):
        import time

        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single(self):
        assert percentile([7.0], 50) == 7.0

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_extremes(self):
        data = [1.0, 5.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0
