import pytest

from repro.codecs.psdoc import PsDocument
from repro.codecs.textcodec import TextCodec
from repro.errors import WorkloadError
from repro.workloads import (
    WebWorkload,
    synthetic_image_message,
    synthetic_ps_document,
    synthetic_ps_message,
    synthetic_text,
    synthetic_text_message,
    web_page_message,
)


class TestSyntheticText:
    def test_size_approximate(self):
        data = synthetic_text(4096, seed=1)
        assert len(data) == 4096

    def test_empty(self):
        assert synthetic_text(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            synthetic_text(-1)

    def test_deterministic(self):
        assert synthetic_text(1000, seed=5) == synthetic_text(1000, seed=5)

    def test_seed_varies(self):
        assert synthetic_text(1000, seed=1) != synthetic_text(1000, seed=2)

    def test_compressible_like_web_text(self):
        data = synthetic_text(16 * 1024, seed=9)
        ratio = len(TextCodec().compress(data)) / len(data)
        assert ratio < 0.4  # the economics behind the Text Compressor


class TestMessages:
    def test_text_message(self):
        msg = synthetic_text_message(512, seed=2)
        assert msg.content_type.essence == "text/plain"
        assert msg.body_size() == 512

    def test_image_message_decodable(self):
        from repro.codecs.imagefmt import decode_gif

        msg = synthetic_image_message(64, 48, seed=3)
        assert msg.content_type.essence == "image/gif"
        raster = decode_gif(msg.body)
        assert (raster.width, raster.height) == (64, 48)

    def test_ps_document_and_message(self):
        doc = synthetic_ps_document(paragraphs=4, seed=4)
        assert isinstance(doc, PsDocument)
        assert len(doc.to_text()) > 0
        assert doc.text_fraction() < 1.0
        msg = synthetic_ps_message(4, seed=4)
        assert msg.content_type.essence == "application/postscript"

    def test_ps_paragraphs_validated(self):
        with pytest.raises(WorkloadError):
            synthetic_ps_document(0)

    def test_web_page_structure(self):
        page = web_page_message(n_images=3, text_bytes=1024, seed=5)
        assert page.is_multipart
        types = [p.content_type.maintype for p in page.parts]
        assert types.count("text") == 1
        assert types.count("image") == 3

    def test_web_page_no_images(self):
        page = web_page_message(n_images=0, text_bytes=256, seed=6)
        assert len(page.parts) == 1

    def test_web_page_validation(self):
        with pytest.raises(WorkloadError):
            web_page_message(n_images=-1)


class TestWebWorkload:
    def test_count_and_mix(self):
        workload = WebWorkload(image_fraction=0.5, seed=7)
        messages = list(workload.messages(40))
        assert len(messages) == 40
        images = sum(1 for m in messages if m.content_type.maintype == "image")
        assert 8 <= images <= 32  # loose binomial bounds

    def test_deterministic(self):
        a = [m.body for m in WebWorkload(seed=8).messages(10)]
        b = [m.body for m in WebWorkload(seed=8).messages(10)]
        assert a == b

    def test_all_text(self):
        messages = list(WebWorkload(image_fraction=0.0, seed=9).messages(10))
        assert all(m.content_type.maintype == "text" for m in messages)

    def test_all_images(self):
        messages = list(WebWorkload(image_fraction=1.0, seed=10).messages(5))
        assert all(m.content_type.maintype == "image" for m in messages)

    def test_total_bytes(self):
        workload = WebWorkload(seed=11)
        assert workload.total_bytes(5) == sum(
            m.total_size() for m in workload.messages(5)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WebWorkload(image_fraction=1.5)
        with pytest.raises(WorkloadError):
            WebWorkload(text_bytes_range=(100, 50))
        with pytest.raises(WorkloadError):
            WebWorkload(image_size_range=(4, 2))
        with pytest.raises(WorkloadError):
            list(WebWorkload().messages(-1))
